"""DCF and AFR behaviour over the real channel (small deterministic scenarios)."""

import pytest

from repro.sim.units import seconds
from tests.conftest import build_chain_network, collect_deliveries, inject_packets


class TestDcfSingleHop:
    def test_packets_delivered_in_order(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 20)
        net.run_seconds(0.2)
        assert [p.seq for p in received] == list(range(20))

    def test_perfect_channel_no_retransmissions(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 1, 10)
        net.run_seconds(0.2)
        assert net.node(0).mac.stats.ack_timeouts == 0
        assert net.node(0).mac.stats.data_frames_sent == 10

    def test_ack_exchanged_per_frame(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 1, 5)
        net.run_seconds(0.1)
        assert net.node(1).mac.stats.ack_frames_sent == 5
        assert net.node(0).mac.stats.ack_frames_received == 5

    def test_queue_overflow_drops(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        inject_packets(net, 0, 1, 120)  # queue capacity is 50
        net.run_seconds(0.5)
        assert net.node(0).mac.stats.packets_dropped_queue > 0

    def test_lossy_channel_triggers_retries_but_delivers(self):
        net, _ = build_chain_network(
            "dcf", n_nodes=2, hop_m=220.0, ber=1e-6, seed=5
        )  # ~50 % frame loss on the single hop
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 20)
        net.run_seconds(1.0)
        assert net.node(0).mac.stats.ack_timeouts > 0
        assert len(received) >= 15  # MAC retries recover most packets


class TestDcfMultiHop:
    def test_three_hop_forwarding(self):
        net, _ = build_chain_network("dcf", n_nodes=4, ber=0.0, shadowing_deviation=0.0)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 15)
        net.run_seconds(0.3)
        assert len(received) == 15
        # Intermediate nodes forwarded at the network layer.
        assert net.node(1).network.stats.forwarded == 15
        assert net.node(2).network.stats.forwarded == 15

    def test_no_duplicate_deliveries(self):
        net, _ = build_chain_network("dcf", n_nodes=4, seed=9)
        received = collect_deliveries(net, 3)
        inject_packets(net, 0, 3, 30)
        net.run_seconds(0.5)
        seqs = [p.seq for p in received]
        assert len(seqs) == len(set(seqs))

    def test_mac_dedup_suppresses_retransmitted_duplicates(self):
        # On a lossy link ACKs get lost, so the same frame is retransmitted and
        # would be delivered twice without the (origin, seq) duplicate filter.
        net, _ = build_chain_network("dcf", n_nodes=2, hop_m=200.0, seed=12)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 40)
        net.run_seconds(1.0)
        seqs = [p.seq for p in received]
        assert len(seqs) == len(set(seqs))


class TestAfrAggregation:
    def test_frames_carry_multiple_packets(self):
        net, _ = build_chain_network("afr", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 32)
        net.run_seconds(0.2)
        stats = net.node(0).mac.stats
        assert len(received) == 32
        assert stats.aggregated_frames > 0
        assert stats.data_frames_sent < 32  # strictly fewer frames than packets
        assert stats.mean_aggregation > 2

    def test_aggregation_respects_maximum(self):
        net, _ = build_chain_network(
            "afr", n_nodes=2, ber=0.0, shadowing_deviation=0.0, max_aggregation=4
        )
        inject_packets(net, 0, 1, 40)
        net.run_seconds(0.3)
        assert net.node(0).mac.stats.mean_aggregation <= 4.0 + 1e-9

    def test_afr_uses_fewer_frames_than_dcf(self):
        results = {}
        for scheme in ("dcf", "afr"):
            net, _ = build_chain_network(scheme, n_nodes=2, ber=0.0, shadowing_deviation=0.0)
            inject_packets(net, 0, 1, 48)
            net.run_seconds(0.3)
            results[scheme] = net.node(0).mac.stats.data_frames_sent
        assert results["afr"] < results["dcf"]

    def test_partial_corruption_retransmits_only_missing(self):
        # A high BER corrupts some sub-packets; AFR must still deliver every
        # packet eventually by retransmitting only what was lost.
        net, _ = build_chain_network("afr", n_nodes=2, ber=2e-5, shadowing_deviation=0.0, seed=4)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 48)
        net.run_seconds(1.0)
        assert len(received) == 48
        assert net.node(0).mac.stats.subpackets_sent > 48  # some were resent

    def test_all_packets_unique_after_partial_retransmission(self):
        net, _ = build_chain_network("afr", n_nodes=2, ber=2e-5, shadowing_deviation=0.0, seed=4)
        received = collect_deliveries(net, 1)
        inject_packets(net, 0, 1, 48)
        net.run_seconds(1.0)
        seqs = [p.seq for p in received]
        assert len(seqs) == len(set(seqs))
