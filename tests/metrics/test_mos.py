"""E-model R-factor and MoS formulas (Section IV-E)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.mos import (
    MOUTH_TO_EAR_DELAY_MS,
    WIRELESS_DELAY_BUDGET_MS,
    evaluate_voip,
    heaviside,
    mos,
    mos_from_r,
    r_factor,
)


class TestRFactor:
    def test_no_loss_low_delay_is_good(self):
        assert r_factor(50.0, 0.0) > 80.0

    def test_loss_reduces_r(self):
        assert r_factor(100.0, 0.1) < r_factor(100.0, 0.0)

    def test_delay_reduces_r(self):
        assert r_factor(250.0, 0.0) < r_factor(100.0, 0.0)

    def test_delay_penalty_kicks_in_past_177ms(self):
        # The extra 0.11 (d - 177.3) term only applies beyond 177.3 ms.
        below = r_factor(177.0, 0.0) - r_factor(176.0, 0.0)
        above = r_factor(200.0, 0.0) - r_factor(199.0, 0.0)
        assert above < below < 0

    def test_paper_operating_point(self):
        # At the paper's 177 ms budget with no loss, quality is "fair"-to-"good".
        r = r_factor(MOUTH_TO_EAR_DELAY_MS, 0.0)
        assert 75 < r < 80
        assert 3.8 < mos_from_r(r) <= 4.5

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            r_factor(100.0, 1.5)

    def test_heaviside(self):
        assert heaviside(1.0) == 1.0
        assert heaviside(0.0) == 0.0
        assert heaviside(-1.0) == 0.0


class TestMos:
    def test_negative_r_maps_to_one(self):
        assert mos_from_r(-10.0) == 1.0

    def test_r_above_100_maps_to_max(self):
        assert mos_from_r(120.0) == 4.5

    def test_mid_range_value(self):
        # R = 70 -> 1 + 2.45 + 7e-6*70*10*30 = 3.597
        assert mos_from_r(70.0) == pytest.approx(3.597, abs=0.001)

    def test_bounds(self):
        for r in (-5, 0, 10, 40, 60, 80, 93.2, 100, 150):
            assert 1.0 <= mos_from_r(r) <= 4.5

    @given(r=st.floats(min_value=6.5, max_value=99.5))
    def test_monotone_in_r(self, r):
        # Above the clamp region the mapping is strictly increasing.
        assert mos_from_r(r + 0.5) >= mos_from_r(r) - 1e-9

    def test_clamped_at_one_for_tiny_r(self):
        assert mos_from_r(0.5) == 1.0

    @given(loss=st.floats(min_value=0, max_value=0.5))
    def test_mos_decreases_with_loss(self, loss):
        assert mos(177.0, loss) <= mos(177.0, 0.0) + 1e-9


class TestEvaluateVoip:
    def test_all_on_time_packets(self):
        quality = evaluate_voip([10.0] * 100, packets_sent=100)
        assert quality.loss_rate == 0.0
        assert quality.mos > 3.8

    def test_late_packets_count_as_losses(self):
        delays = [10.0] * 50 + [80.0] * 50  # half arrive beyond the 52 ms budget
        quality = evaluate_voip(delays, packets_sent=100)
        assert quality.loss_rate == pytest.approx(0.5)
        assert quality.mos < 2.5

    def test_missing_packets_count_as_losses(self):
        quality = evaluate_voip([10.0] * 60, packets_sent=100)
        assert quality.loss_rate == pytest.approx(0.4)

    def test_no_packets_sent_is_worst_case(self):
        quality = evaluate_voip([], packets_sent=0)
        assert quality.mos == 1.0

    def test_budget_constant_matches_paper(self):
        assert WIRELESS_DELAY_BUDGET_MS == 52.0
        assert MOUTH_TO_EAR_DELAY_MS == 177.0

    @given(st.lists(st.floats(min_value=0, max_value=200), max_size=50))
    def test_quality_always_in_range(self, delays):
        quality = evaluate_voip(delays, packets_sent=max(len(delays), 1))
        assert 1.0 <= quality.mos <= 4.5
        assert 0.0 <= quality.loss_rate <= 1.0
