"""Shadowing propagation model: monotonicity, calibration, probabilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation, propagation_delay_ns


@pytest.fixture
def model():
    return ShadowingPropagation()  # paper parameters: exponent 5, deviation 8 dB


class TestMeanPower:
    def test_power_decreases_with_distance(self, model):
        phy = PhyParams()
        powers = [model.mean_received_power_dbm(phy.tx_power_dbm, d) for d in (50, 100, 200, 400)]
        assert powers == sorted(powers, reverse=True)

    def test_path_loss_exponent_slope(self, model):
        # Doubling the distance should cost 10 * 5 * log10(2) ~ 15.05 dB.
        phy = PhyParams()
        p1 = model.mean_received_power_dbm(phy.tx_power_dbm, 100)
        p2 = model.mean_received_power_dbm(phy.tx_power_dbm, 200)
        assert p1 - p2 == pytest.approx(50 * np.log10(2), abs=1e-6)

    def test_reference_distance_clamp(self, model):
        # Below the reference distance the loss does not keep growing.
        phy = PhyParams()
        assert model.mean_received_power_dbm(phy.tx_power_dbm, 0.1) == model.mean_received_power_dbm(
            phy.tx_power_dbm, 1.0
        )

    def test_zero_distance(self, model):
        assert model.mean_received_power_dbm(20.0, 0.0) == 20.0


class TestReceptionProbability:
    def test_probability_decreases_with_distance(self, model):
        phy = PhyParams()
        probs = [
            model.reception_probability(phy.tx_power_dbm, d, phy.rx_threshold_dbm)
            for d in (100, 150, 250, 400)
        ]
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_relay_hop_distance_is_reliable(self, model):
        # The topologies use ~115 m relay hops; they must be >90 % reliable.
        phy = PhyParams()
        assert model.reception_probability(phy.tx_power_dbm, 115, phy.rx_threshold_dbm) > 0.9

    def test_direct_link_distance_is_poor(self, model):
        # The ~300 m "direct" links of Fig. 1 must be well below 50 %.
        phy = PhyParams()
        assert model.reception_probability(phy.tx_power_dbm, 300, phy.rx_threshold_dbm) < 0.5

    def test_hidden_distance_is_not_even_sensed(self, model):
        # Stations ~700 m apart should rarely carrier-sense each other (Fig. 5(b)).
        phy = PhyParams()
        assert model.reception_probability(phy.tx_power_dbm, 700, phy.cs_threshold_dbm) < 0.1

    def test_at_nominal_range_probability_is_half(self, model):
        phy = PhyParams()
        distance = model.range_for_probability(phy.tx_power_dbm, phy.rx_threshold_dbm, 0.5)
        prob = model.reception_probability(phy.tx_power_dbm, distance, phy.rx_threshold_dbm)
        assert prob == pytest.approx(0.5, abs=0.01)

    def test_no_shadowing_is_a_step_function(self):
        model = ShadowingPropagation(shadowing_deviation_db=0.0)
        phy = PhyParams()
        near = model.reception_probability(phy.tx_power_dbm, 50, phy.rx_threshold_dbm)
        far = model.reception_probability(phy.tx_power_dbm, 2000, phy.rx_threshold_dbm)
        assert near == 1.0 and far == 0.0

    def test_range_for_probability_requires_open_interval(self, model):
        with pytest.raises(ValueError):
            model.range_for_probability(20.0, -90.0, 1.0)


class TestShadowingDraws:
    def test_draws_scatter_around_mean(self, model):
        rng = np.random.default_rng(0)
        phy = PhyParams()
        draws = np.array(
            [model.received_power_dbm(phy.tx_power_dbm, 200, rng) for _ in range(4000)]
        )
        mean = model.mean_received_power_dbm(phy.tx_power_dbm, 200)
        assert abs(draws.mean() - mean) < 0.5
        assert abs(draws.std() - 8.0) < 0.5

    @given(distance=st.floats(min_value=1.0, max_value=2000.0))
    def test_probability_is_valid(self, distance):
        model = ShadowingPropagation()
        phy = PhyParams()
        p = model.reception_probability(phy.tx_power_dbm, distance, phy.rx_threshold_dbm)
        assert 0.0 <= p <= 1.0

    def test_draws_are_bounded_by_max_deviation(self):
        # A tight one-sigma bound makes clipping frequent and easy to verify;
        # this bound is exactly what makes receiver culling provably safe.
        model = ShadowingPropagation(shadowing_deviation_db=8.0, max_deviation_sigmas=1.0)
        rng = np.random.default_rng(1)
        mean = model.mean_received_power_dbm(20.0, 200)
        draws = np.array([model.received_power_dbm(20.0, 200, rng) for _ in range(2000)])
        assert draws.max() <= mean + model.max_shadowing_db() + 1e-9
        assert draws.min() >= mean - model.max_shadowing_db() - 1e-9
        assert model.max_shadowing_db() == 8.0

    def test_reception_probability_matches_the_truncated_distribution(self):
        # Clipping piles tail mass at the bound, so the closed form must
        # saturate exactly where the simulation provably always/never hears
        # a frame — otherwise ETX routes over undeliverable links.
        model = ShadowingPropagation(shadowing_deviation_db=8.0, max_deviation_sigmas=1.0)
        mean = model.mean_received_power_dbm(20.0, 200)
        bound = model.max_shadowing_db()
        assert model.reception_probability(20.0, 200, mean - bound) == 1.0
        assert model.reception_probability(20.0, 200, mean + bound + 0.1) == 0.0
        inside = model.reception_probability(20.0, 200, mean + bound / 2)
        assert 0.0 < inside < 0.5  # untruncated Gaussian tail within the bound

    def test_default_bound_is_statistically_invisible(self):
        # At the default 6 sigma the clip probability is ~2e-9: no draw in a
        # realistic run is affected, so the model matches NS-2 in practice.
        model = ShadowingPropagation()
        rng = np.random.default_rng(2)
        draws = np.array([model.received_power_dbm(20.0, 200, rng) for _ in range(4000)])
        assert abs(draws.std() - 8.0) < 0.5


class TestPropagationDelay:
    def test_speed_of_light(self):
        assert propagation_delay_ns(300.0) == pytest.approx(1000, abs=1)

    def test_zero_distance(self):
        assert propagation_delay_ns(0.0) == 0
