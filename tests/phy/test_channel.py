"""Radio + channel behaviour: delivery, carrier sensing, collisions, hidden terminals."""

import pytest

from repro.mac.frames import FrameKind, MacFrame, SubPacket
from repro.mac.timing import DEFAULT_TIMING
from repro.packet import Packet
from repro.phy.channel import WirelessChannel
from repro.phy.error_models import BitErrorModel
from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation
from repro.phy.radio import Radio, RadioState
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import us


class RecordingMac:
    """Minimal MAC stub capturing everything the radio reports."""

    def __init__(self):
        self.received = []
        self.busy_events = 0
        self.idle_events = 0
        self.tx_complete = []

    def on_channel_busy(self):
        self.busy_events += 1

    def on_channel_idle(self):
        self.idle_events += 1

    def on_frame_received(self, frame, errors):
        self.received.append((frame, errors))

    def on_transmission_complete(self, frame):
        self.tx_complete.append(frame)


def make_frame(origin=0, transmitter=0, receiver=1, n_sub=1, size=1000):
    subpackets = [
        SubPacket(
            packet=Packet(src=origin, dst=receiver, size_bytes=size, seq=i),
            mac_seq=i,
            bits=DEFAULT_TIMING.subpacket_bits(size),
        )
        for i in range(n_sub)
    ]
    return MacFrame(
        kind=FrameKind.DATA,
        origin=origin,
        final_dst=receiver,
        transmitter=transmitter,
        receiver=receiver,
        header_bits=DEFAULT_TIMING.header_bits(),
        subpackets=subpackets,
    )


def build(positions, ber=0.0, deviation=0.0, seed=1):
    """A channel with deterministic propagation (no shadowing) by default."""
    sim = Simulator()
    channel = WirelessChannel(
        sim,
        PhyParams(),
        propagation=ShadowingPropagation(shadowing_deviation_db=deviation),
        error_model=BitErrorModel(ber),
        rng=RandomStreams(seed),
    )
    radios = []
    macs = []
    for node_id, position in enumerate(positions):
        radio = Radio(node_id, position, channel)
        mac = RecordingMac()
        radio.attach_mac(mac)
        radios.append(radio)
        macs.append(mac)
    return sim, channel, radios, macs


class TestDelivery:
    def test_nearby_receiver_decodes_frame(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        frame = make_frame()
        radios[0].transmit(frame, us(100))
        sim.run()
        assert len(macs[1].received) == 1
        received_frame, errors = macs[1].received[0]
        assert received_frame is frame
        assert errors.header_ok and errors.subpacket_ok == [True]

    def test_out_of_range_receiver_hears_nothing(self):
        sim, channel, radios, macs = build([(0, 0), (5000, 0)])
        radios[0].transmit(make_frame(), us(100))
        sim.run()
        assert macs[1].received == []
        assert macs[1].busy_events == 0

    def test_sender_gets_completion_callback(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        frame = make_frame()
        radios[0].transmit(frame, us(100))
        sim.run()
        assert macs[0].tx_complete == [frame]

    def test_broadcast_reaches_all_in_range(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0), (0, 100), (120, 120)])
        radios[0].transmit(make_frame(), us(50))
        sim.run()
        assert all(len(mac.received) == 1 for mac in macs[1:])

    def test_half_duplex_sender_does_not_receive_itself(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        radios[0].transmit(make_frame(), us(50))
        sim.run()
        assert macs[0].received == []


class TestCarrierSense:
    def test_busy_during_transmission(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        radios[0].transmit(make_frame(), us(100))
        sim.run(until=us(50))
        assert radios[0].is_channel_busy  # own transmission
        assert radios[1].is_channel_busy  # sensed signal
        sim.run()
        assert not radios[0].is_channel_busy
        assert not radios[1].is_channel_busy

    def test_busy_idle_callbacks_fire_once_per_transition(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        radios[0].transmit(make_frame(), us(100))
        sim.run()
        assert macs[1].busy_events == 1
        assert macs[1].idle_events == 1

    def test_idle_since_updates_at_end_of_signal(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        radios[0].transmit(make_frame(), us(100))
        sim.run()
        assert radios[1].idle_since >= us(100)

    def test_radio_state_enum(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        assert radios[0].state is RadioState.IDLE
        radios[0].transmit(make_frame(), us(100))
        assert radios[0].state is RadioState.TRANSMITTING
        sim.run(until=us(10))
        assert radios[1].state is RadioState.RECEIVING


class TestCollisions:
    def test_overlapping_transmissions_collide_at_receiver(self):
        # Two senders both in range of the middle receiver transmit at once.
        sim, channel, radios, macs = build([(0, 0), (150, 0), (300, 0)])
        radios[0].transmit(make_frame(origin=0, transmitter=0, receiver=1), us(100))
        radios[2].transmit(make_frame(origin=2, transmitter=2, receiver=1), us(100))
        sim.run()
        assert macs[1].received == []
        assert radios[1].stats.frames_collided >= 1

    def test_hidden_terminal_collision(self):
        # Sender 3 is beyond carrier-sense range of sender 0 (560 m > ~400 m
        # nominal CS range) but close enough to receiver 1 (360 m) that its
        # signal interferes there: the classic hidden-terminal loss.
        sim, channel, radios, macs = build([(0, 0), (200, 0), (760, 0), (560, 0)])
        radios[0].transmit(make_frame(origin=0, transmitter=0, receiver=1), us(200))
        sim.run(until=us(50))
        assert not radios[3].is_channel_busy  # genuinely hidden
        radios[3].transmit(make_frame(origin=3, transmitter=3, receiver=2), us(200))
        sim.run()
        assert macs[1].received == []

    def test_non_overlapping_transmissions_both_delivered(self):
        sim, channel, radios, macs = build([(0, 0), (150, 0), (300, 0)])
        radios[0].transmit(make_frame(origin=0, transmitter=0, receiver=1), us(50))
        sim.run()
        radios[2].transmit(make_frame(origin=2, transmitter=2, receiver=1), us(50))
        sim.run()
        assert len(macs[1].received) == 2

    def test_transmitting_while_receiving_destroys_reception(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        radios[0].transmit(make_frame(origin=0, transmitter=0, receiver=1), us(100))
        sim.run(until=us(10))
        radios[1].transmit(make_frame(origin=1, transmitter=1, receiver=0), us(10))
        sim.run()
        assert macs[1].received == []


class TestNeighborhoodCulling:
    """The per-sender candidate index must be an exact, not heuristic, cull."""

    def test_candidates_exclude_only_provably_unreachable(self):
        # deviation=8: the margin is 6 sigma = 48 dB of headroom.
        sim, channel, radios, macs = build(
            [(0, 0), (100, 0), (900, 0), (20000, 0)], deviation=8.0
        )
        candidates = channel.candidate_receivers(radios[0])
        assert radios[1] in candidates
        assert radios[2] in candidates  # unreachable on mean power, not at +6 sigma
        assert radios[3] not in candidates  # beyond even the maximum fade
        assert radios[0] not in candidates  # never a receiver of itself

    def test_culled_radio_can_never_be_sensed(self):
        # The margin guarantee: power draws for a culled link are bounded
        # below the carrier-sense threshold, for any number of frames.
        sim, channel, radios, macs = build([(0, 0), (20000, 0)], deviation=8.0)
        assert radios[1] not in channel.candidate_receivers(radios[0])
        max_fade = channel.propagation.max_shadowing_db()
        mean = channel.propagation.mean_received_power_dbm(
            channel.params.tx_power_dbm, channel.distance(radios[0], radios[1])
        )
        assert mean + max_fade < channel.params.cs_threshold_dbm
        rng = channel.rng.stream_for("shadowing", 0, 1)
        for _ in range(200):
            power = channel.propagation.received_power_dbm(
                channel.params.tx_power_dbm, channel.distance(radios[0], radios[1]), rng
            )
            assert power < channel.params.cs_threshold_dbm

    def test_dispatch_outcome_independent_of_registration_order(self):
        # Keyed per-link RNG: the same (seed, link) sees the same fades no
        # matter how many radios exist or in which order they registered.
        positions = [(0, 0), (115, 0), (230, 0), (345, 0)]

        def deliveries(order):
            sim = Simulator()
            channel = WirelessChannel(
                sim, PhyParams(), error_model=BitErrorModel(0.0), rng=RandomStreams(3)
            )
            radios = {}
            macs = {}
            for node_id in order:
                radios[node_id] = Radio(node_id, positions[node_id], channel)
                macs[node_id] = RecordingMac()
                radios[node_id].attach_mac(macs[node_id])
            for _ in range(20):
                radios[0].transmit(make_frame(), us(50))
                sim.run()
            return {node_id: len(mac.received) for node_id, mac in macs.items()}

        assert deliveries([0, 1, 2, 3]) == deliveries([3, 2, 1, 0])

    def test_candidate_cache_invalidated_by_movement(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)], deviation=0.0)
        assert radios[1] in channel.candidate_receivers(radios[0])
        radios[1].move_to((20000.0, 0.0))
        assert radios[1] not in channel.candidate_receivers(radios[0])
        radios[1].move_to((100.0, 0.0))
        assert radios[1] in channel.candidate_receivers(radios[0])

    def test_candidate_cache_invalidated_by_registration(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        assert len(channel.candidate_receivers(radios[0])) == 1
        late = Radio(99, (50.0, 0.0), channel)
        late.attach_mac(RecordingMac())
        assert late in channel.candidate_receivers(radios[0])

    def test_zero_deviation_culls_on_mean_power_exactly(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0), (5000, 0)], deviation=0.0)
        candidates = channel.candidate_receivers(radios[0])
        assert radios[1] in candidates and radios[2] not in candidates

    def test_radios_property_returns_defensive_copy(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)])
        listed = channel.radios
        listed.clear()
        assert channel.radios == radios


class TestBitErrors:
    def test_high_ber_corrupts_some_subpackets(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)], ber=1e-4)
        for _ in range(30):
            radios[0].transmit(make_frame(n_sub=4), us(200))
            sim.run()
        flags = [ok for _, errors in macs[1].received for ok in errors.subpacket_ok]
        assert any(flags) and not all(flags)

    def test_link_delivery_probability_combines_power_and_ber(self):
        sim, channel, radios, macs = build([(0, 0), (100, 0)], ber=1e-5)
        p = channel.link_delivery_probability(radios[0], radios[1], frame_bits=8000)
        assert 0.85 < p < 0.95  # ~0.92 from BER alone at this short distance

    def test_distance_helper(self):
        sim, channel, radios, macs = build([(0, 0), (3, 4)])
        assert channel.distance(radios[0], radios[1]) == pytest.approx(5.0)
