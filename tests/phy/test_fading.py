"""Fading propagation models and the propagation registry.

Covers the component-pack guarantees: the registry's default entry is
exactly the pre-pack shadowing model, fades stay inside their declared
bounds (the culling contract), batched draws are invariant to buffer size
(the hot-path contract), and the empirical fade distributions match their
closed forms (the statistical sanity the new models are worth having for).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.phy.params import PhyParams
from repro.phy.propagation import (
    RayleighFading,
    RicianFading,
    ShadowingPropagation,
    _rician_tail_numpy,
)
from repro.phy.registry import PROPAGATION_MODELS, build_propagation


class TestRegistry:
    def test_registry_lists_all_models(self):
        assert set(PROPAGATION_MODELS.names()) == {"shadowing", "rayleigh", "rician"}

    def test_default_build_is_the_pre_pack_shadowing_model(self):
        phy = PhyParams()
        assert build_propagation(phy) == ShadowingPropagation(
            max_deviation_sigmas=phy.max_deviation_sigmas
        )

    def test_default_build_inherits_the_cull_margin(self):
        phy = PhyParams(max_deviation_sigmas=4.0)
        assert build_propagation(phy).max_deviation_sigmas == 4.0

    def test_named_builds_with_params(self):
        phy = PhyParams(propagation="rician", propagation_params={"k_factor": 8.0})
        model = build_propagation(phy)
        assert isinstance(model, RicianFading)
        assert model.k_factor == 8.0
        assert isinstance(
            build_propagation(PhyParams(propagation="rayleigh")), RayleighFading
        )

    def test_unknown_model_name_rejected_at_params_construction(self):
        with pytest.raises(ValueError, match="unknown propagation model"):
            PhyParams(propagation="ricean")

    def test_unknown_builder_param_is_an_error(self):
        phy = PhyParams(propagation="rayleigh", propagation_params={"k_factor": 1.0})
        with pytest.raises(ValueError, match="bad parameters for propagation model"):
            build_propagation(phy)

    def test_params_round_trip_through_phy_dict(self):
        phy = PhyParams(propagation="rician", propagation_params={"k_factor": 2.0})
        assert PhyParams.from_dict(phy.to_dict()) == phy


class TestFadeBounds:
    @pytest.mark.parametrize(
        "model",
        [
            ShadowingPropagation(max_deviation_sigmas=2.0),
            RayleighFading(max_fade_db=3.0, min_fade_db=-20.0),
            RicianFading(k_factor=4.0, max_fade_db=3.0, min_fade_db=-20.0),
        ],
    )
    def test_fades_respect_declared_bounds(self, model):
        fades = model.fade_batch_db(np.random.default_rng(0), 50_000)
        assert fades.max() <= model.max_shadowing_db() + 1e-12
        if isinstance(model, ShadowingPropagation):
            assert fades.min() >= -model.max_shadowing_db() - 1e-12
        else:
            assert fades.min() >= model.min_fade_db - 1e-12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RicianFading(k_factor=-1.0)
        with pytest.raises(ValueError):
            RicianFading(min_fade_db=5.0, max_fade_db=5.0)
        with pytest.raises(ValueError, match="K=0 case"):
            RayleighFading(k_factor=2.0)


class TestDeterminism:
    @pytest.mark.parametrize(
        "model",
        [ShadowingPropagation(), RayleighFading(), RicianFading(k_factor=4.0)],
    )
    def test_same_seed_same_fades(self, model):
        a = model.fade_batch_db(np.random.default_rng(7), 256)
        b = model.fade_batch_db(np.random.default_rng(7), 256)
        assert (a == b).all()

    @pytest.mark.parametrize(
        "model",
        [ShadowingPropagation(), RayleighFading(), RicianFading(k_factor=4.0)],
    )
    def test_batch_size_never_changes_the_sample_path(self, model):
        """The hot-path contract: buffering is invisible to a link's fades."""
        whole = model.fade_batch_db(np.random.default_rng(3), 64)
        rng = np.random.default_rng(3)
        split = np.concatenate([model.fade_batch_db(rng, 16) for _ in range(4)])
        assert (whole == split).all()

    def test_shadowing_batch_matches_pre_pack_computation(self):
        """The default model's draws are bit-identical to the pre-registry code."""
        model = ShadowingPropagation()
        ours = model.fade_batch_db(np.random.default_rng(11), 64)
        rng = np.random.default_rng(11)
        theirs = rng.normal(0.0, model.shadowing_deviation_db, 64)
        np.clip(theirs, -model.max_shadowing_db(), model.max_shadowing_db(), out=theirs)
        assert (ours == theirs).all()


class TestStatistics:
    """Empirical fade distributions versus their closed forms."""

    SAMPLES = 200_000

    def test_rayleigh_gain_is_unit_mean_exponential(self):
        model = RayleighFading()
        gains = 10.0 ** (model.fade_batch_db(np.random.default_rng(1), self.SAMPLES) / 10.0)
        assert gains.mean() == pytest.approx(1.0, abs=0.02)
        for threshold in (0.1, 0.5, 1.0, 2.0):
            empirical = float((gains >= threshold).mean())
            assert empirical == pytest.approx(math.exp(-threshold), abs=0.01)

    @pytest.mark.parametrize("k_factor", [0.0, 1.0, 4.0, 16.0])
    def test_rician_tail_matches_closed_form(self, k_factor):
        model = RicianFading(k_factor=k_factor)
        gains = 10.0 ** (model.fade_batch_db(np.random.default_rng(2), self.SAMPLES) / 10.0)
        assert gains.mean() == pytest.approx(1.0, abs=0.02)
        for threshold in (0.25, 0.75, 1.25):
            empirical = float((gains >= threshold).mean())
            assert empirical == pytest.approx(
                model.gain_tail_probability(threshold), abs=0.01
            )

    def test_rician_k0_equals_rayleigh(self):
        assert RicianFading(k_factor=0.0).gain_tail_probability(0.7) == pytest.approx(
            RayleighFading().gain_tail_probability(0.7), abs=1e-9
        )

    def test_numpy_tail_fallback_matches_scipy(self):
        ncx2 = pytest.importorskip("scipy.stats").ncx2
        for k, gain in ((0.5, 0.3), (4.0, 1.0), (10.0, 1.5)):
            exact = float(ncx2.sf(2.0 * (k + 1.0) * gain, df=2, nc=2.0 * k))
            assert _rician_tail_numpy(gain, k) == pytest.approx(exact, abs=1e-6)

    def test_reception_probability_saturates_at_the_clip_bounds(self):
        model = RayleighFading(max_fade_db=6.0, min_fade_db=-30.0)
        tx = 24.49
        mean = model.mean_received_power_dbm(tx, 100.0)
        assert model.reception_probability(tx, 100.0, mean + model.max_fade_db + 1) == 0.0
        assert model.reception_probability(tx, 100.0, mean + model.min_fade_db) == 1.0
        mid = model.reception_probability(tx, 100.0, mean)
        assert 0.0 < mid < 1.0
