"""The sweepable cull margin: PhyParams.max_deviation_sigmas end to end.

The channel's receiver cull excludes a radio only when its deterministic
path-loss power plus the *largest possible* fade still misses the
carrier-sense threshold; the largest fade is ``shadowing_deviation_db *
max_deviation_sigmas``.  Making the margin a PhyParams field (ROADMAP
dense-mesh note) lets a scenario trade a statistically tiny model
deviation (4σ ≈ a 3e-5 clip probability per draw) for a much tighter
cull radius — these tests pin the wiring from the config/spec layer down
to the per-sender candidate lists.
"""

import pytest

from repro.phy.params import PhyParams
from repro.topology.network import WirelessNetwork
from repro.topology.roofnet import roofnet_scenario


def _total_candidates(phy: PhyParams) -> int:
    """Sum of candidate-list lengths over every sender on the Roofnet layout."""
    spec = roofnet_scenario(seed=7)
    network = WirelessNetwork(phy=phy, seed=1)
    network.add_nodes(spec.positions)
    channel = network.channel
    return sum(
        len(channel.candidate_receivers(node.radio)) for node in network.nodes.values()
    )


class TestSweepableCullMargin:
    #: A carrier-sense threshold at which the Roofnet pair distances
    #: straddle the 4σ/6σ cull radii (the stock -145.5 dBm threshold puts
    #: even the 4σ radius beyond the layout's ~900 m diameter).
    CS_THRESHOLD_DBM = -110.0

    def test_4_sigma_culls_more_than_6_sigma_on_roofnet(self):
        base = dict(cs_threshold_dbm=self.CS_THRESHOLD_DBM, rx_threshold_dbm=-105.0)
        six = _total_candidates(PhyParams(max_deviation_sigmas=6.0, **base))
        four = _total_candidates(PhyParams(max_deviation_sigmas=4.0, **base))
        n = len(roofnet_scenario(seed=7).positions)
        assert four < six <= n * (n - 1)
        assert four > 0

    def test_margin_flows_from_phy_into_propagation(self):
        network = WirelessNetwork(phy=PhyParams(max_deviation_sigmas=4.0))
        assert network.propagation.max_deviation_sigmas == 4.0
        # and the cull bound follows the margin: 8 dB deviation * 4 sigmas
        assert network.propagation.max_shadowing_db() == pytest.approx(32.0)

    def test_default_margin_unchanged(self):
        """The default stays at 6σ, keeping pre-existing runs bit-identical."""
        assert PhyParams().max_deviation_sigmas == 6.0
        assert WirelessNetwork().propagation.max_deviation_sigmas == 6.0

    def test_margin_round_trips_through_serialization(self):
        phy = PhyParams(max_deviation_sigmas=4.0)
        data = phy.to_dict()
        assert data["max_deviation_sigmas"] == 4.0
        assert PhyParams.from_dict(data) == phy

    def test_margin_addressable_from_the_spec_layer(self):
        from repro.spec import ScenarioSpec, TopologyRef

        spec = ScenarioSpec.from_dict(
            {"topology": {"name": "roofnet"}, "phy": {"max_deviation_sigmas": 4.0}}
        )
        assert spec.to_config().phy.max_deviation_sigmas == 4.0
        # Different margins must hash to different sweep-cache digests.
        from repro.experiments.parallel import config_digest

        four = spec.to_config()
        six = ScenarioSpec.from_dict({"topology": {"name": "roofnet"}}).to_config()
        assert config_digest(four) != config_digest(six)
