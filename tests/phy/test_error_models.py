"""i.i.d. bit-error model: closed form, sampling, per-sub-packet independence."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.error_models import CLEAR_CHANNEL, NOISY_CHANNEL, BitErrorModel


class TestSuccessProbability:
    def test_clear_channel_packet_success(self):
        # 1000-byte packet at BER 1e-6: (1 - 1e-6)^8000 ~ 0.992
        assert CLEAR_CHANNEL.success_probability(8000) == pytest.approx(0.992, abs=0.001)

    def test_noisy_channel_packet_success(self):
        # Same packet at BER 1e-5: ~ 0.923
        assert NOISY_CHANNEL.success_probability(8000) == pytest.approx(0.923, abs=0.002)

    def test_zero_bits_always_succeed(self):
        assert NOISY_CHANNEL.success_probability(0) == 1.0

    def test_zero_ber_always_succeeds(self):
        assert BitErrorModel(0.0).success_probability(10**6) == 1.0

    def test_probability_decreases_with_size(self):
        model = NOISY_CHANNEL
        probs = [model.success_probability(bits) for bits in (100, 1000, 10_000, 100_000)]
        assert probs == sorted(probs, reverse=True)

    @given(bits=st.integers(min_value=0, max_value=10**6), ber=st.sampled_from([0.0, 1e-6, 1e-5, 1e-3]))
    def test_probability_in_unit_interval(self, bits, ber):
        p = BitErrorModel(ber).success_probability(bits)
        assert 0.0 <= p <= 1.0


class TestSampling:
    def test_block_ok_matches_probability(self):
        rng = np.random.default_rng(1)
        model = BitErrorModel(1e-4)
        bits = 8000  # ~45 % success
        outcomes = [model.block_ok(bits, rng) for _ in range(4000)]
        assert abs(np.mean(outcomes) - model.success_probability(bits)) < 0.03

    def test_evaluate_frame_shapes(self):
        rng = np.random.default_rng(2)
        result = CLEAR_CHANNEL.evaluate_frame(300, [8000, 8000, 400], rng)
        assert isinstance(result.header_ok, bool)
        assert len(result.subpacket_ok) == 3

    def test_evaluate_frame_any_all_helpers(self):
        rng = np.random.default_rng(3)
        perfect = BitErrorModel(0.0).evaluate_frame(300, [100, 100], rng)
        assert perfect.all_payload_ok and perfect.any_payload_ok
        hopeless = BitErrorModel(1.0).evaluate_frame(300, [100, 100], rng)
        assert not hopeless.any_payload_ok and not hopeless.all_payload_ok

    def test_subpackets_fail_independently(self):
        # With a harsh BER, some sub-packets survive while others die within
        # the same frame — the property AFR/RIPPLE partial retransmission uses.
        rng = np.random.default_rng(4)
        model = BitErrorModel(1e-4)
        mixed = 0
        for _ in range(300):
            result = model.evaluate_frame(0, [8000] * 4, rng)
            if result.any_payload_ok and not result.all_payload_ok:
                mixed += 1
        assert mixed > 50
