"""Traffic generators: FTP, web ON/OFF, VoIP on-off, CBR / saturating UDP."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.units import ms, seconds
from repro.traffic.cbr import CbrSource, SaturatingSource
from repro.traffic.ftp import FtpApplication
from repro.traffic.voip import VoipFlow
from repro.traffic.web import WebFlow, pareto_transfer_bytes
from repro.transport.tcp import TcpSender, TcpSink
from repro.transport.udp import UdpReceiver, UdpSender
from tests.conftest import build_chain_network


class TestParetoTransfers:
    def test_mean_is_close_to_target(self):
        rng = np.random.default_rng(1)
        sizes = [pareto_transfer_bytes(rng, 80_000, 1.5) for _ in range(20_000)]
        assert np.mean(sizes) == pytest.approx(80_000, rel=0.2)

    def test_sizes_are_positive(self):
        rng = np.random.default_rng(2)
        assert all(pareto_transfer_bytes(rng, 80_000, 1.5) >= 1 for _ in range(100))

    def test_heavy_tail_exists(self):
        rng = np.random.default_rng(3)
        sizes = [pareto_transfer_bytes(rng, 80_000, 1.5) for _ in range(5000)]
        assert max(sizes) > 10 * 80_000  # occasional very large objects

    def test_shape_must_exceed_one(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            pareto_transfer_bytes(rng, 80_000, 1.0)


class TestFtp:
    def test_start_is_idempotent(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = TcpSender(net.sim, net.node(0).transport, 1, 1)
        TcpSink(net.sim, net.node(1).transport, 1, peer=0)
        app = FtpApplication(sender)
        app.start()
        app.start()
        net.run_seconds(0.05)
        assert sender.stats.segments_sent > 0


class TestWebFlow:
    def test_transfers_alternate_with_think_time(self):
        net, _ = build_chain_network("afr", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = TcpSender(net.sim, net.node(0).transport, 1, 1)
        sink = TcpSink(net.sim, net.node(1).transport, 1, peer=0)
        web = WebFlow(net.sim, sender, np.random.default_rng(5), mean_transfer_bytes=20_000,
                      mean_off_time_s=0.05)
        web.start()
        net.run_seconds(2.0)
        assert web.stats.transfers_started >= 2
        assert web.stats.transfers_completed >= 1
        assert sink.stats.unique_bytes > 0

    def test_stop_prevents_new_transfers(self):
        net, _ = build_chain_network("afr", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = TcpSender(net.sim, net.node(0).transport, 1, 1)
        TcpSink(net.sim, net.node(1).transport, 1, peer=0)
        web = WebFlow(net.sim, sender, np.random.default_rng(6), mean_transfer_bytes=5_000,
                      mean_off_time_s=0.01)
        web.start()
        net.run_seconds(0.2)
        web.stop()
        started = web.stats.transfers_started
        net.run_seconds(0.5)
        assert web.stats.transfers_started <= started + 1


class TestVoipFlow:
    def test_packetisation_rate(self):
        # 96 kb/s at 20 ms intervals = 240-byte packets.
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        receiver = UdpReceiver(net.sim, net.node(1).transport, 1)
        flow = VoipFlow(net.sim, sender, receiver, np.random.default_rng(7))
        assert flow.packet_bytes == 240

    def test_on_off_pattern_sends_packets(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        receiver = UdpReceiver(net.sim, net.node(1).transport, 1)
        flow = VoipFlow(net.sim, sender, receiver, np.random.default_rng(8))
        flow.start()
        net.run_seconds(3.0)
        assert flow.stats.packets_sent > 20
        assert flow.stats.on_periods >= 1
        # An on-off source at 96 kb/s averages well below the always-on rate.
        assert flow.stats.packets_sent < 3.0 / 0.02

    def test_quality_on_clean_channel_is_good(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        receiver = UdpReceiver(net.sim, net.node(1).transport, 1)
        flow = VoipFlow(net.sim, sender, receiver, np.random.default_rng(9))
        flow.start()
        net.run_seconds(3.0)
        quality = flow.quality()
        assert quality.loss_rate < 0.05
        assert quality.mos > 3.5


class TestCbrSources:
    def test_cbr_rate(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        UdpReceiver(net.sim, net.node(1).transport, 1)
        source = CbrSource(net.sim, sender, packet_bytes=500, interval_ns=ms(10))
        source.start()
        net.run_seconds(0.5)
        assert 45 <= source.stats.packets_sent <= 52

    def test_saturating_source_keeps_queue_full(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        receiver = UdpReceiver(net.sim, net.node(1).transport, 1)
        source = SaturatingSource(net.sim, sender, net.node(0).mac)
        source.start()
        net.run_seconds(0.3)
        # The receiver sees a continuous stream: the MAC was never starved.
        assert receiver.stats.received > 500

    def test_sources_can_be_stopped(self):
        net, _ = build_chain_network("dcf", n_nodes=2, ber=0.0, shadowing_deviation=0.0)
        net.install_transport()
        sender = UdpSender(net.sim, net.node(0).transport, 1, 1)
        UdpReceiver(net.sim, net.node(1).transport, 1)
        source = CbrSource(net.sim, sender, interval_ns=ms(5))
        source.start()
        net.run_seconds(0.1)
        source.stop()
        sent = source.stats.packets_sent
        net.run_seconds(0.2)
        assert source.stats.packets_sent == sent
