"""Poisson session traffic: arrival statistics, determinism, installer wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.sim.engine import Simulator
from repro.spec import TrafficSpec
from repro.topology.standard import line_topology
from repro.traffic.poisson import PoissonFlow


class _RecordingSender:
    def __init__(self):
        self.sent = []

    def send(self, size_bytes):
        self.sent.append(size_bytes)


class TestPoissonFlow:
    def drive(self, seed=1, duration_s=50.0, **kwargs):
        sim = Simulator()
        sender = _RecordingSender()
        flow = PoissonFlow(sim, sender, np.random.default_rng(seed), **kwargs)
        flow.start()
        sim.run(until=int(duration_s * 1e9))
        return flow, sender

    def test_session_count_matches_the_arrival_rate(self):
        flow, _ = self.drive(duration_s=50.0, arrival_rate_hz=4.0, mean_holding_s=0.2)
        # ~200 expected arrivals; 5 sigma ~ 70.
        assert 130 <= flow.stats.sessions_started <= 270

    def test_packet_volume_matches_the_offered_load(self):
        flow, sender = self.drive(
            duration_s=50.0, arrival_rate_hz=4.0, mean_holding_s=0.5, packet_interval_ms=10.0
        )
        # Each session sends ~holding/interval packets; E[total] ~ 4*50*0.5*100 = 10000.
        assert sender.sent
        assert flow.stats.packets_sent == len(sender.sent)
        assert 7000 <= flow.stats.packets_sent <= 13000

    def test_packet_size_derived_from_bitrate(self):
        flow, _ = self.drive(duration_s=1.0, bitrate_bps=400_000.0, packet_interval_ms=10.0)
        assert flow.packet_bytes == 500  # 400 kb/s * 10 ms / 8

    def test_deterministic_given_seed(self):
        first, sender_a = self.drive(seed=9, duration_s=10.0)
        second, sender_b = self.drive(seed=9, duration_s=10.0)
        assert first.stats == second.stats
        assert sender_a.sent == sender_b.sent

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonFlow(sim, _RecordingSender(), np.random.default_rng(0), arrival_rate_hz=0.0)
        with pytest.raises(ValueError):
            PoissonFlow(sim, _RecordingSender(), np.random.default_rng(0), mean_holding_s=-1.0)

    def test_reset_stats_preserves_active_sessions(self):
        flow, _ = self.drive(duration_s=5.0, arrival_rate_hz=10.0, mean_holding_s=2.0)
        active = flow.stats.sessions_active
        flow.reset_stats()
        assert flow.stats.packets_sent == 0
        assert flow.stats.sessions_active == active


class TestInstaller:
    CONFIG = dict(duration_s=0.3, seed=5)

    def test_reflavours_flows_and_delivers(self):
        config = ScenarioConfig(
            topology=line_topology(3),
            traffic=TrafficSpec("poisson", {"arrival_rate_hz": 30.0}),
            **self.CONFIG,
        )
        result = run_scenario(config)
        (flow,) = result.flows
        assert flow.kind == "udp"
        assert flow.packets_received > 0

    def test_warmup_reset_drops_prewarmup_packets(self):
        base = dict(
            topology=line_topology(3),
            traffic=TrafficSpec("poisson", {"arrival_rate_hz": 30.0}),
            duration_s=0.3,
            seed=5,
        )
        full_span = run_scenario(ScenarioConfig(**{**base, "duration_s": 0.6}))
        warmed = run_scenario(ScenarioConfig(warmup_s=0.3, **base))
        # Both simulate 0.6 s, but the warmed run's counters cover only the
        # 0.3 s measurement window — strictly less than the whole span
        # (sessions provably start in [0, 0.3) at this arrival rate).
        assert 0 < warmed.flows[0].packets_sent < full_span.flows[0].packets_sent

    def test_unknown_installer_param_rejected(self):
        config = ScenarioConfig(
            topology=line_topology(3),
            traffic=TrafficSpec("poisson", {"arrivals": 1}),
            **self.CONFIG,
        )
        with pytest.raises(TypeError):
            run_scenario(config)
