"""ResultCache under fire: concurrent readers/writers, corrupt-entry quarantine.

The service leans on two cache properties: atomic writes mean a reader
never observes a torn entry (even with multiple processes hammering one
digest), and a corrupt entry is quarantined — renamed aside and reported
as a miss — instead of permanently poisoning its digest.
"""

import json
import multiprocessing
import sys

from repro.experiments.parallel import ResultCache, config_digest
from repro.experiments.runner import ScenarioConfig, run_scenario

#: Tiny but non-trivial scenario shared by every hammer process.
HAMMER_CONFIG = {
    "topology": {
        "name": "line",
        "params": {"n_hops": 2},
    },
    "duration_s": 0.02,
}


def _hammer_config() -> ScenarioConfig:
    from repro.spec import ScenarioSpec

    return ScenarioSpec.from_dict(HAMMER_CONFIG).to_config()


def _writer(cache_root: str, iterations: int) -> None:
    config = _hammer_config()
    result = run_scenario(config)
    cache = ResultCache(cache_root)
    for _ in range(iterations):
        cache.store(config, result)
    sys.exit(0)


def _reader(cache_root: str, iterations: int) -> None:
    config = _hammer_config()
    expected = run_scenario(config).to_dict()  # deterministic: same as any writer's
    cache = ResultCache(cache_root)
    for _ in range(iterations):
        loaded = cache.load(config)
        if loaded is None:
            sys.exit(3)  # atomic replace means the entry must always be readable
        if loaded.to_dict() != expected:
            sys.exit(4)  # torn or mixed read
    sys.exit(0)


class TestConcurrentAccess:
    def test_hammering_one_digest_never_tears(self, tmp_path):
        cache_root = tmp_path / "cache"
        config = _hammer_config()
        ResultCache(cache_root).store(config, run_scenario(config))

        processes = [
            multiprocessing.Process(target=_writer, args=(str(cache_root), 150))
            for _ in range(2)
        ] + [
            multiprocessing.Process(target=_reader, args=(str(cache_root), 300))
            for _ in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        assert [process.exitcode for process in processes] == [0, 0, 0, 0]
        # Nothing got quarantined along the way, and the entry still loads.
        assert not list(cache_root.rglob("*.corrupt"))
        final = ResultCache(cache_root)
        assert final.load(config) is not None


class TestQuarantine:
    def test_undecodable_entry_is_quarantined_not_permamissed(
        self, tmp_path, small_config
    ):
        cache = ResultCache(tmp_path / "cache")
        config = small_config()
        digest = config_digest(config)
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json", encoding="utf-8")

        assert cache.load(config) is None
        assert not path.exists()  # moved aside, not left to fail forever
        corpse = path.with_name(path.name + ".corrupt")
        assert corpse.exists()
        assert cache.stats() == {"hits": 0, "misses": 1, "quarantined": 1}

        # The digest heals: a fresh store makes the next load a clean hit.
        result = run_scenario(config)
        cache.store(config, result)
        assert cache.load(config).to_dict() == result.to_dict()
        assert cache.stats() == {"hits": 1, "misses": 1, "quarantined": 1}

    def test_valid_json_that_is_not_a_result_is_quarantined(
        self, tmp_path, small_config
    ):
        cache = ResultCache(tmp_path / "cache")
        config = small_config()
        path = cache.path_for(config_digest(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"flows": "nope"}), encoding="utf-8")

        assert cache.load(config) is None
        assert path.with_name(path.name + ".corrupt").exists()
        # Counters stay truthful: the structural reject is a miss, not a hit.
        assert cache.stats() == {"hits": 0, "misses": 1, "quarantined": 1}

    def test_non_dict_payload_is_quarantined_by_load_raw(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "ab" * 32
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.load_raw(digest) is None
        assert cache.quarantined == 1

    def test_missing_entry_is_a_plain_miss(self, tmp_path, small_config):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(small_config()) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "quarantined": 0}
