"""The ``python -m repro.service`` CLI: worker, submit and status subcommands."""

import json
import threading

import pytest

from repro.experiments.parallel import ResultCache, config_digest
from repro.service.__main__ import build_parser, main
from repro.service.app import SimulationService, make_server
from repro.service.store import JobStore
from repro.spec import ScenarioSpec


@pytest.fixture
def live_server(store, cache):
    service = SimulationService(store, cache)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)


class TestParser:
    def test_commands_and_store_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--store", "/tmp/x", "--once"])
        assert args.command == "worker" and args.once
        args = parser.parse_args(["serve", "--port", "0", "--workers", "2"])
        assert args.port == 0 and args.workers == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestWorkerCommand:
    def test_once_processes_one_job(self, store, small_spec, capsys):
        config = ScenarioSpec.from_dict(small_spec).to_config()
        record = store.submit(config.to_dict(), digest=config_digest(config))
        assert main(["worker", "--store", str(store.root), "--once"]) == 0
        out = capsys.readouterr().out
        assert f"{record.job_id}: done" in out
        assert store.get(record.job_id).state == "done"
        assert ResultCache(store.cache_dir).load_raw(record.digest) is not None

    def test_once_on_empty_store_reports_idle(self, tmp_path, capsys):
        assert main(["worker", "--store", str(tmp_path / "empty"), "--once"]) == 0
        assert "idle" in capsys.readouterr().out

    def test_idle_exit_drains_and_returns(self, store, small_spec, capsys):
        config = ScenarioSpec.from_dict(small_spec).to_config()
        store.submit(config.to_dict())
        code = main(
            ["worker", "--store", str(store.root), "--idle-exit", "0", "--poll", "0.01"]
        )
        assert code == 0
        assert "processed 1 job(s) (0 failed)" in capsys.readouterr().out


class TestSubmitAndStatus:
    def write_spec(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        return str(path)

    def test_submit_then_worker_then_status(
        self, live_server, store, tmp_path, small_spec, capsys
    ):
        spec_file = self.write_spec(tmp_path, small_spec)
        assert main(["submit", "--url", live_server, spec_file]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["state"] == "queued"

        assert main(["worker", "--store", str(store.root), "--once"]) == 0
        capsys.readouterr()

        assert main(["status", "--url", live_server, submitted["job_id"]]) == 0
        final = json.loads(capsys.readouterr().out)
        assert final["state"] == "done"
        assert final["result"].endswith(final["digest"])

    def test_submit_wait_on_warm_cache_prints_results(
        self, live_server, store, cache, tmp_path, small_spec, capsys
    ):
        from repro.experiments.runner import run_scenario

        config = ScenarioSpec.from_dict(small_spec).to_config()
        cache.store(config, run_scenario(config))
        spec_file = self.write_spec(tmp_path, small_spec)
        assert main(["submit", "--url", live_server, spec_file, "--wait"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["job"]["state"] == "done"
        digest = config_digest(config)
        assert document["results"][digest] == run_scenario(config).to_dict()

    def test_submit_rejection_exits_2(self, live_server, tmp_path, capsys):
        spec_file = self.write_spec(tmp_path, {"warp_drive": 9})
        assert main(["submit", "--url", live_server, spec_file]) == 2
        assert "submit rejected" in capsys.readouterr().err

    def test_status_unknown_job_exits_1(self, live_server, capsys):
        assert main(["status", "--url", live_server, "no-such-job"]) == 1
        assert "404" in capsys.readouterr().err
