"""WorkQueue: lease exclusivity, heartbeats, backoff, reclaim after death.

These tests never sleep: the queue reads epoch time through
``repro.service.clock.wall_s``, which is monkeypatched to a controllable
fake so lease expiry and backoff gates are driven deterministically.
"""

import pytest

from repro.service import clock
from repro.service.queue import WorkQueue


class FakeWallClock:
    def __init__(self, start=1_000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def wall(monkeypatch):
    fake = FakeWallClock()
    monkeypatch.setattr(clock, "wall_s", fake)
    return fake


@pytest.fixture
def queue(store, wall):
    return WorkQueue(store, lease_ttl_s=10.0, backoff_base_s=1.0, backoff_cap_s=8.0)


class TestClaim:
    def test_claims_oldest_queued_job_first(self, store, queue):
        store.submit({"x": 2}, job_id="002-b")
        store.submit({"x": 1}, job_id="001-a")
        record = queue.claim("w1")
        assert record.job_id == "001-a"
        assert record.state == "leased"
        assert record.attempts == 1
        assert store.get("001-a").state == "leased"
        assert queue.lease_path("001-a").exists()

    def test_lease_is_exclusive(self, store, queue):
        store.submit({"x": 1}, job_id="001-a")
        assert queue.claim("w1").job_id == "001-a"
        assert queue.claim("w2") is None

    def test_skips_groups_terminal_and_backoff_gated_jobs(self, store, queue, wall):
        store.submit(None, job_id="001-g", kind="group", children=[])
        store.submit({"x": 1}, job_id="002-d", state="done")
        gated = store.submit({"x": 2}, job_id="003-b")
        gated.not_before = wall.now + 5.0
        store.update(gated)
        assert queue.claim("w1") is None
        wall.advance(5.0)
        assert queue.claim("w1").job_id == "003-b"

    def test_claim_rechecks_record_under_lease(self, store, queue):
        # The record completes between the scan and the lease: claim must
        # notice on re-read and back out, releasing the lease it grabbed.
        record = store.submit({"x": 1}, job_id="001-a")
        original_get = store.get

        def complete_then_get(job_id):
            current = original_get(job_id)
            if not queue.lease_path(job_id).exists():
                return current  # the pre-lease scan sees it queued
            current.state = "done"
            store.update(current)
            return original_get(job_id)

        store.get = complete_then_get
        assert queue.claim("w1") is None
        store.get = original_get
        assert store.get(record.job_id).state == "done"
        assert not queue.lease_path(record.job_id).exists()


class TestHeartbeatAndRelease:
    def test_heartbeat_extends_expiry(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a")
        queue.claim("w1")
        first = queue._read_lease(queue.lease_path("001-a"))
        wall.advance(4.0)
        refreshed = queue.heartbeat("001-a", "w1")
        assert refreshed.expires_s == pytest.approx(first.expires_s + 4.0)
        on_disk = queue._read_lease(queue.lease_path("001-a"))
        assert on_disk.expires_s == pytest.approx(refreshed.expires_s)
        assert on_disk.owner == "w1"

    def test_release_is_idempotent(self, store, queue):
        store.submit({"x": 1}, job_id="001-a")
        queue.claim("w1")
        queue.release("001-a")
        queue.release("001-a")
        assert not queue.lease_path("001-a").exists()

    def test_torn_lease_reads_as_none(self, queue):
        path = queue.lease_path("001-a")
        path.write_text('{"job_id": "001-a", "own')
        assert queue._read_lease(path) is None


class TestCompleteAndFail:
    def test_complete_marks_done_and_drops_lease(self, store, queue):
        store.submit({"x": 1}, job_id="001-a")
        record = queue.claim("w1")
        done = queue.complete(record, digest="ab" * 32)
        assert done.state == "done"
        assert done.digest == "ab" * 32
        assert done.finished_s is not None
        assert store.get("001-a").state == "done"
        assert not queue.lease_path("001-a").exists()

    def test_backoff_doubles_to_cap(self, queue):
        assert queue.backoff_s(0) == 0.0
        assert [queue.backoff_s(n) for n in (1, 2, 3, 4, 5)] == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_fail_requeues_with_backoff_below_cap(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a", max_attempts=3)
        record = queue.claim("w1")
        failed = queue.fail_attempt(record, "boom")
        assert failed.state == "queued"
        assert failed.error == "boom"
        assert failed.not_before == pytest.approx(wall.now + 1.0)
        assert not queue.lease_path("001-a").exists()
        # Gated now; claimable again once the backoff elapses.
        assert queue.claim("w1") is None
        wall.advance(1.0)
        assert queue.claim("w1").attempts == 2

    def test_fail_at_cap_quarantines(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a", max_attempts=2)
        for _ in range(2):
            record = queue.claim("w1")
            failed = queue.fail_attempt(record, "boom")
            wall.advance(10.0)
        assert failed.state == "failed"
        assert failed.quarantined
        assert failed.finished_s is not None
        assert queue.claim("w1") is None  # quarantined jobs never run again


class TestReclaim:
    def test_live_lease_not_reclaimed(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a")
        queue.claim("w1")
        wall.advance(5.0)  # inside the 10 s TTL
        assert queue.reclaim_expired() == []
        assert store.get("001-a").state == "leased"

    def test_expired_lease_requeues_job(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a")
        queue.claim("w1")
        wall.advance(11.0)
        assert queue.reclaim_expired() == ["001-a"]
        record = store.get("001-a")
        assert record.state == "queued"
        assert record.attempts == 1  # the dead worker's attempt still counts
        assert record.not_before == pytest.approx(wall.now + 1.0)
        assert not queue.lease_path("001-a").exists()
        wall.advance(1.0)
        assert queue.claim("w2").attempts == 2

    def test_expiry_at_attempt_cap_quarantines(self, store, queue, wall):
        store.submit({"x": 1}, job_id="001-a", max_attempts=1)
        queue.claim("w1")
        wall.advance(11.0)
        queue.reclaim_expired()
        record = store.get("001-a")
        assert record.state == "failed"
        assert record.quarantined
        assert "worker presumed dead" in record.error

    def test_lease_on_terminal_record_just_dropped(self, store, queue, wall):
        # Worker died after completing the job but before releasing.
        store.submit({"x": 1}, job_id="001-a")
        record = queue.claim("w1")
        record.state = "done"
        store.update(record)
        wall.advance(11.0)
        assert queue.reclaim_expired() == []
        assert not queue.lease_path("001-a").exists()
        assert store.get("001-a").state == "done"

    def test_orphan_lease_without_record_dropped(self, store, queue, wall):
        queue._try_create_lease("999-ghost", "w1")
        wall.advance(11.0)
        assert queue.reclaim_expired() == []
        assert not queue.lease_path("999-ghost").exists()
