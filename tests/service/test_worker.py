"""Worker: claim-run-complete loop, instant cached path, poison quarantine."""

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.parallel import config_digest
from repro.experiments.runner import run_scenario
from repro.service.queue import WorkQueue
from repro.service.worker import Worker


@pytest.fixture
def worker(store, cache):
    # backoff_base_s=0 so retry loops run without waiting out real time.
    queue = WorkQueue(store, backoff_base_s=0.0)
    return Worker(store, cache=cache, queue=queue, worker_id="w-test", poll_s=0.01)


class TestRunOnce:
    def test_idle_queue_returns_none(self, worker):
        assert worker.run_once() is None

    def test_runs_fresh_job_bit_identical_to_direct_run(
        self, store, cache, worker, small_config
    ):
        config = small_config()
        submitted = store.submit(config.to_dict(), digest=config_digest(config))
        record = worker.run_once()
        assert record.job_id == submitted.job_id
        assert record.state == "done"
        assert record.digest == config_digest(config)
        assert worker.jobs_done == 1
        # The lease is gone and the heartbeat thread did not resurrect it.
        assert not worker.queue.lease_path(record.job_id).exists()
        # The cached payload is exactly what an in-process run produces.
        assert cache.load_raw(record.digest) == run_scenario(config).to_dict()

    def test_digest_computed_when_submit_omitted_it(self, store, worker, small_config):
        config = small_config()
        store.submit(config.to_dict())
        record = worker.run_once()
        assert record.digest == config_digest(config)

    def test_cached_digest_completes_without_simulating(
        self, store, cache, worker, small_config, monkeypatch
    ):
        config = small_config()
        cache.store(config, run_scenario(config))
        store.submit(config.to_dict(), digest=config_digest(config))

        def explode(config):
            raise AssertionError("cached job must not simulate")

        monkeypatch.setattr(parallel, "_run_config_to_dict", explode)
        record = worker.run_once()
        assert record.state == "done"


class TestPoisonJobs:
    def test_poison_job_quarantined_not_retried_forever(self, store, worker):
        # A payload ScenarioConfig.from_dict rejects: every attempt fails,
        # and the cap retires the job instead of looping.
        store.submit({"corrupt": True}, max_attempts=3)
        processed = worker.run_until_idle()
        assert processed == 3
        assert worker.jobs_failed == 1  # counted once, at quarantine
        (record,) = list(store.records())
        assert record.state == "failed"
        assert record.quarantined
        assert record.attempts == 3
        assert "SpecError" in record.error
        assert worker.run_once() is None  # nothing left to claim

    def test_failed_attempt_below_cap_requeues(self, store, worker):
        store.submit({"corrupt": True}, max_attempts=2)
        record = worker.run_once()
        assert record.state == "queued"
        assert record.attempts == 1
        assert "SpecError" in record.error


class TestLoops:
    def test_run_until_idle_drains_everything(self, store, worker, small_config):
        for seed in (1, 2):
            store.submit(small_config(seed=seed).to_dict())
        assert worker.run_until_idle() == 2
        assert all(record.state == "done" for record in store.records())

    def test_run_forever_max_jobs(self, store, worker, small_config):
        for seed in (1, 2):
            store.submit(small_config(seed=seed).to_dict())
        assert worker.run_forever(max_jobs=1) == 1
        assert store.counts()["queued"] == 1

    def test_run_forever_idle_exit(self, worker):
        assert worker.run_forever(idle_exit_s=0.0) == 0
