"""Fault injection: a worker SIGKILLed mid-job loses its lease, the job retries.

A real worker process claims the job through the real claim/heartbeat
path, but its scenario execution is patched to hang forever — a stand-in
for any wedged or dying worker.  SIGKILL leaves the lease file on disk
with no heartbeats behind it; after the TTL, any sweep requeues the job
and a healthy worker completes it.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro
from repro.experiments.parallel import config_digest
from repro.service.queue import WorkQueue
from repro.service.worker import Worker
from repro.spec import ScenarioSpec

SRC_DIR = Path(repro.__file__).resolve().parents[1]

LEASE_TTL_S = 1.0


def _spawn_hanging_worker(store_root: Path) -> subprocess.Popen:
    script = textwrap.dedent(
        f"""
        import threading
        import repro.experiments.parallel as parallel
        # Wedge every simulation: claim + heartbeat run for real, the job never ends.
        parallel._run_config_to_dict = lambda config: threading.Event().wait(600)
        from repro.service.store import JobStore
        from repro.service.worker import Worker
        Worker(JobStore({str(store_root)!r}), lease_ttl_s={LEASE_TTL_S}).run_once()
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.Popen([sys.executable, "-c", script], env=env)


def test_sigkilled_worker_lease_is_reclaimed_and_job_retried(store, small_spec):
    config = ScenarioSpec.from_dict(small_spec).to_config()
    job = store.submit(config.to_dict(), digest=config_digest(config))
    lease_path = store.leases_dir / f"{job.job_id}.json"

    process = _spawn_hanging_worker(store.root)
    try:
        deadline = time.time() + 30.0
        while not lease_path.exists():
            assert process.poll() is None, "hanging worker exited before claiming"
            assert time.time() < deadline, "worker never claimed the job"
            time.sleep(0.05)
        assert store.get(job.job_id).state == "leased"
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)

    # The kill left the claim behind: job still leased, lease file present.
    assert lease_path.exists()
    assert store.get(job.job_id).state == "leased"

    # Once heartbeats stop, the lease expires and any sweep requeues the job.
    queue = WorkQueue(store, lease_ttl_s=LEASE_TTL_S, backoff_base_s=0.0)
    deadline = time.time() + 30.0
    while job.job_id not in queue.reclaim_expired():
        assert time.time() < deadline, "expired lease never reclaimed"
        time.sleep(0.1)
    reclaimed = store.get(job.job_id)
    assert reclaimed.state == "queued"
    assert reclaimed.attempts == 1  # the dead worker's attempt is on the record
    assert not lease_path.exists()

    # A healthy worker picks the retry up and completes it for real.
    worker = Worker(store, queue=queue, worker_id="healthy")
    done = worker.run_once()
    assert done is not None and done.job_id == job.job_id
    assert done.state == "done"
    assert done.attempts == 2
    assert worker.cache.load_raw(done.digest) is not None
