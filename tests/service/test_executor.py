"""JobStoreExecutor: SweepRunner's distributed backend over the job store."""

import threading

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.parallel import SweepRunner, config_digest
from repro.experiments.runner import run_scenario
from repro.service.executor import DistributedSweepError, JobStoreExecutor
from repro.service.queue import WorkQueue
from repro.service.worker import Worker


@pytest.fixture
def background_worker(store, cache):
    stop = threading.Event()
    worker = Worker(
        store, cache=cache, queue=WorkQueue(store, backoff_base_s=0.0), poll_s=0.02
    )
    thread = threading.Thread(
        target=worker.run_forever, kwargs={"stop_event": stop}, daemon=True
    )
    thread.start()
    yield worker
    stop.set()
    thread.join(timeout=30)


class TestDistributedSweep:
    def test_results_identical_to_local_sweep(
        self, store, cache, background_worker, small_config
    ):
        configs = [small_config(seed=seed) for seed in (1, 2)]
        runner = SweepRunner(
            cache=cache,
            executor=JobStoreExecutor(store, cache, poll_s=0.02, timeout_s=120),
        )
        results = runner.run(configs)
        for config, result in zip(configs, results):
            assert result.to_dict() == run_scenario(config).to_dict()
        # Every config went through the store as a job and landed done.
        records = list(store.records())
        assert len(records) == 2
        assert {record.digest for record in records} == {
            config_digest(config) for config in configs
        }
        assert all(record.state == "done" for record in records)

    def test_cached_configs_never_reach_the_store(self, store, cache, small_config):
        config = small_config()
        cache.store(config, run_scenario(config))
        runner = SweepRunner(
            cache=cache, executor=JobStoreExecutor(store, cache, timeout_s=5)
        )
        result = runner.run_one(config)
        assert result.to_dict() == run_scenario(config).to_dict()
        assert store.job_ids() == []  # the cache hit short-circuited the executor

    def test_failed_job_raises(self, store, cache, background_worker, small_config, monkeypatch):
        def explode(config):
            raise RuntimeError("injected crash")

        monkeypatch.setattr(parallel, "_run_config_to_dict", explode)
        executor = JobStoreExecutor(
            store, cache, poll_s=0.02, timeout_s=60, max_attempts=1
        )
        with pytest.raises(DistributedSweepError, match="injected crash"):
            executor([small_config()])

    def test_no_workers_times_out(self, store, cache, small_config):
        executor = JobStoreExecutor(store, cache, poll_s=0.02, timeout_s=0.2)
        with pytest.raises(DistributedSweepError, match="still pending"):
            executor([small_config()])
