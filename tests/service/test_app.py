"""SimulationService routing: statuses, validation, backpressure, metrics.

Drives :meth:`SimulationService.route` directly — no sockets — which is
exactly the surface the HTTP handler adapts.  The socket path itself is
covered by ``test_http_e2e.py``.
"""

import json

import pytest

from repro.experiments.parallel import config_digest
from repro.experiments.runner import run_scenario
from repro.service.app import SimulationService
from repro.spec import ScenarioSpec


@pytest.fixture
def service(store, cache):
    return SimulationService(store, cache, max_queue=8)


def post_jobs(service, body: dict):
    return service.route("POST", "/jobs", json.dumps(body).encode("utf-8"))


class TestSubmit:
    def test_valid_spec_is_accepted_queued(self, service, store, small_spec):
        status, payload = post_jobs(service, {"spec": small_spec})
        assert status == 202
        assert payload["state"] == "queued"
        assert payload["kind"] == "scenario"
        expected = config_digest(ScenarioSpec.from_dict(small_spec).to_config())
        assert payload["digest"] == expected
        assert store.get(payload["job_id"]).config is not None

    def test_body_not_json_is_parse_error(self, service):
        status, payload = service.route("POST", "/jobs", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "ParseError"

    def test_unknown_request_field_is_spec_error(self, service, small_spec):
        status, payload = post_jobs(service, {"spec": small_spec, "bogus": 1})
        assert status == 400
        assert payload["error"]["type"] == "SpecError"
        assert "bogus" in payload["error"]["message"]

    def test_unknown_component_is_structured_400(self, service):
        status, payload = post_jobs(service, {"spec": {"topology": {"name": "warp"}}})
        assert status == 400
        assert "warp" in payload["error"]["message"]

    def test_bad_spec_enqueues_nothing(self, service, store, small_spec):
        post_jobs(service, {"spec": small_spec, "bogus": 1})
        assert store.job_ids() == []

    def test_cached_digest_is_born_done(self, service, cache, small_spec):
        config = ScenarioSpec.from_dict(small_spec).to_config()
        cache.store(config, run_scenario(config))
        status, payload = post_jobs(service, {"spec": small_spec})
        assert status == 202
        assert payload["state"] == "done"
        assert payload["result"] == f"/results/{config_digest(config)}"
        status, result = service.route("GET", payload["result"])
        assert status == 200
        assert result == run_scenario(config).to_dict()

    def test_seeds_fan_out_into_group(self, service, store, small_spec):
        status, payload = post_jobs(service, {"spec": small_spec, "seeds": 3})
        assert status == 202
        assert payload["kind"] == "group"
        assert len(payload["children"]) == 3
        assert len(set(payload["digests"])) == 3
        assert payload["progress"] == {
            "total": 3, "queued": 3, "leased": 0, "done": 0, "failed": 0,
        }
        assert store.queue_depth() == 3


class TestBackpressure:
    def test_full_queue_rejects_without_enqueueing(self, store, cache, small_spec):
        service = SimulationService(store, cache, max_queue=1)
        assert post_jobs(service, {"spec": small_spec})[0] == 202
        other = dict(small_spec, duration_s=0.06)
        status, payload = post_jobs(service, {"spec": other})
        assert status == 429
        assert payload["error"]["type"] == "Backpressure"
        assert store.queue_depth() == 1  # the rejected spec never landed
        assert service.requests_rejected == 1

    def test_cached_submissions_bypass_backpressure(self, store, cache, small_spec):
        service = SimulationService(store, cache, max_queue=0)
        config = ScenarioSpec.from_dict(small_spec).to_config()
        cache.store(config, run_scenario(config))
        status, payload = post_jobs(service, {"spec": small_spec})
        assert status == 202
        assert payload["state"] == "done"


class TestReads:
    def test_job_status_roundtrip_and_404(self, service, small_spec):
        _, submitted = post_jobs(service, {"spec": small_spec})
        status, payload = service.route("GET", f"/jobs/{submitted['job_id']}")
        assert status == 200
        assert payload["job_id"] == submitted["job_id"]
        status, payload = service.route("GET", "/jobs/no-such-job")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_result_validation_and_miss(self, service):
        status, payload = service.route("GET", "/results/not-hex!")
        assert status == 400
        assert payload["error"]["type"] == "BadDigest"
        status, payload = service.route("GET", f"/results/{'ab' * 32}")
        assert status == 404

    def test_unknown_route_is_404(self, service):
        assert service.route("GET", "/nope")[0] == 404
        assert service.route("POST", "/jobs/123", b"{}")[0] == 404


class TestHealthAndMetrics:
    def test_healthz(self, service, store):
        status, payload = service.route("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_depth"] == 0

    def test_metrics_track_queue_cache_and_throughput(
        self, service, store, cache, small_spec
    ):
        post_jobs(service, {"spec": small_spec, "seeds": 2})
        status, payload = service.route("GET", "/metrics")
        assert status == 200
        # Group parents are excluded from depth but present in the state tally.
        assert payload["queue_depth"] == 2
        assert payload["jobs"]["queued"] == 3
        assert payload["submitted"] == 2
        assert payload["cache"] == {"hits": 0, "misses": 2, "quarantined": 0}
        assert payload["uptime_s"] > 0
