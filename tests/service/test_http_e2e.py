"""End-to-end over a real socket: submit -> worker -> result, bit-identical.

The acceptance proof for the service: a result fetched over HTTP is
byte-identical to running the same ScenarioSpec in-process, both when
the worker simulates it fresh and when the digest is already cached.
"""

import json
import threading

import pytest

from repro.experiments.parallel import config_digest
from repro.experiments.runner import run_scenario
from repro.service.app import SimulationService, make_server
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.queue import WorkQueue
from repro.service.worker import Worker
from repro.spec import ScenarioSpec


@pytest.fixture
def service_stack(store, cache):
    """A live HTTP server plus one in-process worker draining its store."""
    service = SimulationService(store, cache, max_queue=64)
    server = make_server(service, port=0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    stop = threading.Event()
    worker = Worker(
        store, cache=cache, queue=WorkQueue(store, backoff_base_s=0.0), poll_s=0.02
    )
    worker_thread = threading.Thread(
        target=worker.run_forever, kwargs={"stop_event": stop}, daemon=True
    )
    worker_thread.start()

    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), store, cache
    finally:
        stop.set()
        worker_thread.join(timeout=30)
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=30)


def test_fresh_and_warm_submissions_match_direct_run(service_stack, small_spec):
    client, _store, _cache = service_stack
    config = ScenarioSpec.from_dict(small_spec).to_config()

    submitted = client.submit(small_spec)
    assert submitted["state"] == "queued"
    job = client.wait(submitted["job_id"], timeout_s=60)
    assert job["state"] == "done"
    assert job["digest"] == config_digest(config)

    served = client.result(job["digest"])
    direct = run_scenario(config).to_dict()
    assert json.dumps(served, sort_keys=True) == json.dumps(direct, sort_keys=True)

    # Warm path: the same spec resubmitted is done at submit time.
    resubmitted = client.submit(small_spec)
    assert resubmitted["state"] == "done"
    assert resubmitted["digest"] == job["digest"]


def test_seed_fanout_group_completes_with_per_seed_results(service_stack, small_spec):
    client, _store, _cache = service_stack
    submitted = client.submit(small_spec, seeds=2)
    assert submitted["kind"] == "group"
    group = client.wait(submitted["job_id"], timeout_s=120)
    assert group["state"] == "done"
    assert group["progress"]["done"] == 2
    for seed, digest in zip((1, 2), submitted["digests"]):
        config = ScenarioSpec.from_dict(dict(small_spec, seed=seed)).to_config()
        assert digest == config_digest(config)
        assert client.result(digest) == run_scenario(config).to_dict()


def test_failed_job_surfaces_through_wait(service_stack):
    client, store, _cache = service_stack
    # Poison the queue behind the API's validation: a payload the worker
    # cannot parse, capped at one attempt so it quarantines immediately.
    record = store.submit({"corrupt": True}, max_attempts=1)
    with pytest.raises(JobFailed) as excinfo:
        client.wait(record.job_id, timeout_s=60)
    assert excinfo.value.payload["quarantined"] is True
    assert "SpecError" in excinfo.value.payload["error"]


def test_http_errors_carry_structured_payloads(service_stack, small_spec):
    client, _store, _cache = service_stack
    with pytest.raises(ServiceError) as excinfo:
        client.submit(dict(small_spec, warp_drive=9))
    assert excinfo.value.status == 400
    assert "warp_drive" in str(excinfo.value)
    with pytest.raises(ServiceError) as excinfo:
        client.job("no-such-job")
    assert excinfo.value.status == 404
