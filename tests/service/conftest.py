"""Shared fixtures for the simulation-service suite (store, cache, tiny scenarios)."""

import pytest

from repro.experiments.parallel import ResultCache
from repro.experiments.runner import ScenarioConfig
from repro.service.store import JobStore
from repro.topology.standard import fig1_topology

#: The smallest useful ScenarioSpec document — what an HTTP client POSTs.
SMALL_SPEC = {
    "topology": {"name": "line", "params": {"n_hops": 2}},
    "duration_s": 0.05,
}


def make_small_config(**overrides) -> ScenarioConfig:
    """The same tiny scenario the sweep-runner tests use."""
    defaults = dict(
        topology=fig1_topology(),
        scheme_label="D",
        active_flows=[1],
        duration_s=0.05,
        seed=2,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture
def small_config():
    """Factory fixture: ``small_config(seed=3)`` -> tiny ScenarioConfig."""
    return make_small_config


@pytest.fixture
def small_spec():
    return dict(SMALL_SPEC)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "service")


@pytest.fixture
def cache(store):
    return ResultCache(store.cache_dir)
