"""JobStore/JobRecord: durable records, strict parsing, aggregates."""

import pytest

from repro.serialization import SpecError
from repro.service.store import (
    DEFAULT_MAX_ATTEMPTS,
    JobNotFound,
    JobRecord,
    JobStore,
    JobStoreError,
    new_job_id,
)


class TestJobRecord:
    def test_round_trip(self):
        record = JobRecord(
            job_id="001-abc",
            config={"duration_s": 0.05},
            digest="ab" * 32,
            state="leased",
            attempts=2,
            max_attempts=5,
            not_before=12.5,
            error="boom",
            created_s=1.0,
            finished_s=None,
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="bogus"):
            JobRecord.from_dict({"job_id": "x", "bogus": 1})

    def test_job_id_required(self):
        with pytest.raises(SpecError, match="job_id"):
            JobRecord.from_dict({"state": "queued"})

    def test_invalid_state_and_kind_rejected(self):
        with pytest.raises(SpecError, match="state"):
            JobRecord(job_id="x", state="running")
        with pytest.raises(SpecError, match="kind"):
            JobRecord(job_id="x", kind="batch")

    def test_config_must_be_dict_or_null(self):
        with pytest.raises(SpecError, match="config"):
            JobRecord.from_dict({"job_id": "x", "config": [1, 2]})

    def test_quarantined_means_failed_at_attempt_cap(self):
        poisoned = JobRecord(job_id="x", state="failed", attempts=3, max_attempts=3)
        assert poisoned.terminal and poisoned.quarantined
        plain_failure = JobRecord(job_id="x", state="failed", attempts=1, max_attempts=3)
        assert plain_failure.terminal and not plain_failure.quarantined
        assert not JobRecord(job_id="x", state="queued").terminal


class TestJobIds:
    def test_unique_and_time_sortable_shape(self):
        ids = {new_job_id() for _ in range(64)}
        assert len(ids) == 64
        for job_id in ids:
            millis, _, suffix = job_id.partition("-")
            assert len(millis) == 13 and millis.isdigit()
            assert suffix


class TestJobStore:
    def test_submit_get_update(self, store, small_config):
        config = small_config().to_dict()
        record = store.submit(config, digest="ab" * 32)
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert record.created_s > 0
        loaded = store.get(record.job_id)
        assert loaded == record
        loaded.state = "done"
        store.update(loaded)
        assert store.get(record.job_id).state == "done"

    def test_submit_born_done_is_terminal(self, store):
        record = store.submit({"x": 1}, digest="ab" * 32, state="done")
        assert record.terminal
        assert record.finished_s is not None

    def test_job_id_collision_rejected(self, store):
        store.submit({"x": 1}, job_id="001-dup")
        with pytest.raises(JobStoreError, match="collision"):
            store.submit({"x": 2}, job_id="001-dup")

    def test_missing_job_raises_not_found(self, store):
        with pytest.raises(JobNotFound):
            store.get("no-such-job")

    def test_torn_record_raises_and_is_skipped_by_records(self, store):
        good = store.submit({"x": 1}, job_id="001-good")
        store.path_for("000-torn").write_text('{"job_id": "000-torn", "sta')
        with pytest.raises(JobStoreError, match="unreadable"):
            store.get("000-torn")
        assert [record.job_id for record in store.records()] == [good.job_id]

    def test_job_ids_sorted(self, store):
        for job_id in ("003-c", "001-a", "002-b"):
            store.submit({"x": 1}, job_id=job_id)
        assert store.job_ids() == ["001-a", "002-b", "003-c"]

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "from-env"))
        store = JobStore()
        assert store.root == tmp_path / "from-env"
        assert store.jobs_dir.is_dir() and store.leases_dir.is_dir()


class TestAggregates:
    def test_counts_and_queue_depth(self, store):
        store.submit({"x": 1}, job_id="001-a")
        store.submit({"x": 2}, job_id="002-b", state="done")
        poisoned = store.submit({"x": 3}, job_id="003-c")
        poisoned.state = "failed"
        poisoned.attempts = poisoned.max_attempts
        store.update(poisoned)
        store.submit(None, job_id="004-g", kind="group", children=["001-a", "002-b"])
        counts = store.counts()
        # The group parent is 'queued' in counts but never occupies a worker.
        assert counts == {
            "queued": 2, "leased": 0, "done": 1, "failed": 1,
            "quarantined": 1, "leases": 0,
        }
        assert store.queue_depth() == 1

    def test_group_progress(self, store):
        store.submit({"x": 1}, job_id="001-a")
        store.submit({"x": 2}, job_id="002-b", state="done")
        group = store.submit(
            None, kind="group", children=["001-a", "002-b", "009-missing"]
        )
        progress = store.group_progress(group)
        assert progress["total"] == 3
        assert progress["queued"] == 1 and progress["done"] == 1
