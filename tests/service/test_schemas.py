"""SubmitRequest parsing/fan-out and response payload shaping."""

import pytest

import repro.service.schemas as schemas
from repro.serialization import SpecError
from repro.service.schemas import SubmitRequest, error_payload, job_payload

SMALL_SPEC = {
    "topology": {"name": "line", "params": {"n_hops": 2}},
    "duration_s": 0.05,
}


class TestSubmitRequestParsing:
    def test_round_trip(self):
        request = SubmitRequest.from_dict(
            {"spec": SMALL_SPEC, "seeds": [4, 7], "sweep": {"scheme_label": ["D", "R16"]},
             "max_attempts": 5}
        )
        assert SubmitRequest.from_dict(request.to_dict()) == request

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="bogus"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "bogus": 1})

    def test_spec_required_and_must_be_dict(self):
        with pytest.raises(SpecError, match="spec"):
            SubmitRequest.from_dict({})
        with pytest.raises(SpecError, match="spec"):
            SubmitRequest.from_dict({"spec": [1]})

    def test_seeds_int_means_one_through_n(self):
        request = SubmitRequest.from_dict({"spec": SMALL_SPEC, "seeds": 3})
        assert request.seeds == [1, 2, 3]

    @pytest.mark.parametrize("seeds", [0, -1, True, [], "3"])
    def test_bad_seeds_rejected(self, seeds):
        with pytest.raises(SpecError, match="seeds"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "seeds": seeds})

    def test_sweep_field_must_be_a_spec_field(self):
        with pytest.raises(SpecError, match="warp"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "sweep": {"warp": [1]}})

    def test_sweep_seed_axis_redirected_to_seeds(self):
        with pytest.raises(SpecError, match="'seeds' field"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "sweep": {"seed": [1, 2]}})

    def test_sweep_values_must_be_non_empty_lists(self):
        with pytest.raises(SpecError, match="non-empty"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "sweep": {"scheme_label": []}})

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(SpecError, match="max_attempts"):
            SubmitRequest.from_dict({"spec": SMALL_SPEC, "max_attempts": 0})


class TestExpand:
    def test_no_axes_is_one_spec(self):
        specs = SubmitRequest.from_dict({"spec": SMALL_SPEC}).expand()
        assert len(specs) == 1

    def test_sweep_times_seeds_with_seeds_innermost(self):
        request = SubmitRequest.from_dict(
            {"spec": SMALL_SPEC, "seeds": 2, "sweep": {"scheme_label": ["D", "R16"]}}
        )
        combos = [(spec.scheme_label, spec.seed) for spec in request.expand()]
        assert combos == [("D", 1), ("D", 2), ("R16", 1), ("R16", 2)]

    def test_invalid_swept_value_rejected(self):
        request = SubmitRequest.from_dict(
            {"spec": SMALL_SPEC, "sweep": {"topology": [{"name": "warp"}]}}
        )
        with pytest.raises(SpecError, match="warp"):
            request.expand()

    def test_fanout_ceiling(self, monkeypatch):
        monkeypatch.setattr(schemas, "MAX_FANOUT", 4)
        request = SubmitRequest.from_dict({"spec": SMALL_SPEC, "seeds": 5})
        with pytest.raises(SpecError, match="fans out into 5"):
            request.expand()


class TestPayloads:
    def test_scenario_done_payload_links_result(self, store):
        record = store.submit({"x": 1}, digest="ab" * 32, state="done")
        payload = job_payload(store, record)
        assert payload["state"] == "done"
        assert payload["result"] == f"/results/{'ab' * 32}"

    def test_queued_scenario_has_no_result_link(self, store):
        record = store.submit({"x": 1}, digest="ab" * 32)
        assert "result" not in job_payload(store, record)

    def test_group_state_derived_from_children(self, store):
        store.submit({"x": 1}, job_id="001-a", state="done")
        store.submit({"x": 2}, job_id="002-b")
        group = store.submit(None, kind="group", children=["001-a", "002-b"])
        payload = job_payload(store, group)
        assert payload["state"] == "queued"
        assert payload["progress"]["done"] == 1

        child = store.get("002-b")
        child.state = "done"
        store.update(child)
        assert job_payload(store, group)["state"] == "done"

    def test_group_failed_only_when_all_children_terminal(self, store):
        store.submit({"x": 1}, job_id="001-a", state="failed")
        store.submit({"x": 2}, job_id="002-b")
        group = store.submit(None, kind="group", children=["001-a", "002-b"])
        assert job_payload(store, group)["state"] == "queued"  # still draining
        child = store.get("002-b")
        child.state = "done"
        store.update(child)
        assert job_payload(store, group)["state"] == "failed"

    def test_error_payload_shape(self):
        assert error_payload("SpecError", "bad") == {
            "error": {"type": "SpecError", "message": "bad"}
        }
