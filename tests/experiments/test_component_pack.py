"""Component-pack integration: determinism, cache digests, bit-identity.

The cross-cutting guarantees of the propagation/MAC/traffic/topology pack:
every new component is deterministic with parallel == serial, every new
parameter reaches the cache digest (no aliasing with pre-pack entries),
and the default shadowing path is bit-identical to a pre-pack build.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import CACHE_SCHEMA_VERSION, SweepRunner, config_digest
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.phy.params import PhyParams
from repro.phy.propagation import ShadowingPropagation
from repro.spec import MacSpec, ScenarioSpec, TrafficSpec
from repro.topology.network import WirelessNetwork
from repro.topology.standard import line_topology


def pack_configs():
    """One small config per new component (plus one combining all of them)."""
    topology = line_topology(3)
    base = dict(topology=topology, duration_s=0.05, seed=3)
    return [
        ScenarioConfig(phy=PhyParams(propagation="rayleigh"), **base),
        ScenarioConfig(
            phy=PhyParams(propagation="rician", propagation_params={"k_factor": 2.0}), **base
        ),
        ScenarioConfig(mac=MacSpec("rate_adapt", {"inner": "ripple", "up_after": 3}), **base),
        ScenarioConfig(traffic=TrafficSpec("poisson", {"arrival_rate_hz": 40.0}), **base),
        ScenarioConfig(
            phy=PhyParams(propagation="rician"),
            mac=MacSpec("rate_adapt"),
            traffic=TrafficSpec("poisson", {"arrival_rate_hz": 40.0}),
            **base,
        ),
    ]


class TestDeterminism:
    @pytest.mark.parametrize("index", range(5))
    def test_each_component_is_deterministic(self, index):
        config = pack_configs()[index]
        assert run_scenario(config).to_dict() == run_scenario(config).to_dict()

    def test_parallel_equals_serial_for_the_pack(self):
        configs = pack_configs()
        serial = SweepRunner(jobs=1).run(configs)
        parallel = SweepRunner(jobs=4).run(configs)
        for a, b in zip(serial, parallel):
            assert a.to_dict() == b.to_dict()

    def test_results_round_trip_through_the_cache_layer(self, tmp_path):
        from repro.experiments.parallel import ResultCache

        cache = ResultCache(tmp_path)
        config = pack_configs()[4]
        first = SweepRunner(jobs=1, cache=cache).run_one(config)
        second = SweepRunner(jobs=1, cache=cache).run_one(config)
        assert cache.hits == 1
        assert first.to_dict() == second.to_dict()


class TestBitIdentity:
    """The default propagation path must be exactly the pre-pack model."""

    def test_default_network_propagation_is_shadowing(self):
        network = WirelessNetwork(seed=1)
        assert network.propagation == ShadowingPropagation(
            max_deviation_sigmas=network.phy.max_deviation_sigmas
        )

    def test_explicit_shadowing_phy_equals_default_run(self):
        topology = line_topology(3)
        base = dict(topology=topology, duration_s=0.05, seed=3)
        default = run_scenario(ScenarioConfig(**base))
        explicit = run_scenario(ScenarioConfig(phy=PhyParams(propagation="shadowing"), **base))
        assert default.flows[0].to_dict() == explicit.flows[0].to_dict()
        assert default.events_processed == explicit.events_processed


class TestCacheSchema:
    def test_schema_version_at_least_the_component_pack_bump(self):
        # The pack bumped the layout to 4; later PRs may bump further (the
        # exact current value is pinned in tests/experiments/test_parallel.py).
        assert CACHE_SCHEMA_VERSION >= 4

    def test_digest_covers_propagation_model_and_params(self):
        base = dict(topology=line_topology(3), duration_s=0.05, seed=3)
        digests = {
            config_digest(ScenarioConfig(**base)),
            config_digest(ScenarioConfig(phy=PhyParams(), **base)),
            config_digest(ScenarioConfig(phy=PhyParams(propagation="rayleigh"), **base)),
            config_digest(ScenarioConfig(phy=PhyParams(propagation="rician"), **base)),
            config_digest(
                ScenarioConfig(
                    phy=PhyParams(propagation="rician", propagation_params={"k_factor": 9.0}),
                    **base,
                )
            ),
        }
        assert len(digests) == 5

    def test_digest_covers_mac_and_traffic_params(self):
        base = dict(topology=line_topology(3), duration_s=0.05, seed=3)
        digests = {
            config_digest(ScenarioConfig(mac=MacSpec("rate_adapt"), **base)),
            config_digest(ScenarioConfig(mac=MacSpec("rate_adapt", {"up_after": 5}), **base)),
            config_digest(ScenarioConfig(mac=MacSpec("rate_adapt", {"inner": "ripple"}), **base)),
            config_digest(ScenarioConfig(traffic=TrafficSpec("poisson"), **base)),
            config_digest(
                ScenarioConfig(traffic=TrafficSpec("poisson", {"arrival_rate_hz": 1.0}), **base)
            ),
        }
        assert len(digests) == 5

    def test_digest_json_stable_across_processes(self):
        """The digest payload must be canonical JSON (regression guard)."""
        config = pack_configs()[4]
        assert config_digest(config) == config_digest(
            ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        )


class TestAcceptanceCombination:
    """`topology=trace:... mac=rate_adapt traffic=poisson phy.propagation=rician`."""

    CSV = "node,0,0,0\nnode,1,115,0\nnode,2,230,0\nflow,1,0,2\n"

    def test_full_combination_runs_and_round_trips(self, tmp_path):
        path = tmp_path / "site.csv"
        path.write_text(self.CSV, encoding="utf-8")
        document = {
            "topology": {"name": f"trace:{path}", "params": {}},
            "mac": {"name": "rate_adapt", "params": {}},
            "traffic": {"name": "poisson", "params": {"arrival_rate_hz": 40.0}},
            "phy": {"propagation": "rician"},
            "duration_s": 0.1,
            "seed": 2,
        }
        spec = ScenarioSpec.from_dict(document)
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))).to_dict() == spec.to_dict()
        config = spec.to_config()
        result = run_scenario(config)
        assert result.flows
        restored = ScenarioConfig.from_dict(result.config.to_dict())
        assert restored.to_dict() == result.config.to_dict()
