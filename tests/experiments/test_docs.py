"""The generated component reference: content, freshness, failure modes."""

from __future__ import annotations

import pytest

from repro.docs import (
    DocsError,
    check_freshness,
    generate_components_markdown,
    main,
    registry_sections,
)
from repro.registry import Registry


class TestGeneration:
    def test_every_registry_section_present(self):
        titles = [section.title for section in registry_sections()]
        assert titles == [
            "Topologies",
            "MAC schemes",
            "Routing strategies",
            "Traffic kinds",
            "Transport schemes",
            "Mobility models",
            "Propagation models",
        ]

    def test_all_new_components_listed(self):
        markdown = generate_components_markdown()
        for name in ("rate_adapt", "poisson", "rayleigh", "rician", "trace:<arg>", "shadowing"):
            assert f"`{name}`" in markdown, name

    def test_aliases_and_params_rendered(self):
        markdown = generate_components_markdown()
        assert "`etx`" in markdown  # adaptive_etx alias
        assert "`k_factor=4.0`" in markdown  # rician builder signature
        assert "`arrival_rate_hz=4.0`" in markdown  # poisson installer signature
        assert "`speed_min_mps=0.0`" in markdown  # mobility doc_params

    def test_generation_is_deterministic(self):
        assert generate_components_markdown() == generate_components_markdown()

    def test_every_description_is_nonempty(self):
        for section in registry_sections():
            for row in section.rows:
                assert row.description.strip(), (section.title, row.name)

    def test_undocumented_component_fails_the_build(self):
        from repro.docs import _plain_rows

        registry = Registry("demo widget")

        @registry.register("undocumented")
        def _build():  # noqa: no docstring on purpose
            pass

        with pytest.raises(DocsError, match="demo widget 'undocumented'"):
            _plain_rows(registry, skip=0)


class TestFreshness:
    def test_committed_copy_is_fresh(self):
        """The repo's docs/COMPONENTS.md must match the live registries."""
        assert check_freshness("docs/COMPONENTS.md") is None

    def test_stale_copy_yields_a_diff(self, tmp_path):
        stale = tmp_path / "COMPONENTS.md"
        stale.write_text("# old\n", encoding="utf-8")
        diff = check_freshness(str(stale))
        assert diff is not None and "generated" in diff

    def test_missing_copy_is_stale(self, tmp_path):
        assert check_freshness(str(tmp_path / "nope.md")) is not None


class TestCli:
    def test_check_mode_exit_codes(self, tmp_path, capsys):
        target = tmp_path / "COMPONENTS.md"
        assert main(["--output", str(target)]) == 0  # writes
        assert main(["--check", "--output", str(target)]) == 0  # fresh
        target.write_text("# stale\n", encoding="utf-8")
        assert main(["--check", "--output", str(target)]) == 1
        capsys.readouterr()

    def test_stdout_mode_prints_markdown(self, capsys):
        assert main(["--stdout"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Component reference")

    def test_experiments_list_markdown_matches_generator(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        assert experiments_main(["list", "--markdown"]) == 0
        assert capsys.readouterr().out == generate_components_markdown()
