"""The declarative spec layer: round-trips, strictness, alias canonicalization."""

import json

import pytest

from repro.experiments.parallel import config_digest
from repro.experiments.runner import (
    PAPER_SCHEMES,
    ScenarioConfig,
    expand_scheme_label,
    run_scenario,
)
from repro.mac.registry import MAC_SCHEMES
from repro.mobility.models import MOBILITY_MODELS
from repro.mobility.spec import MobilitySpec
from repro.phy.params import HIGH_RATE_PHY, LOW_RATE_PHY, PhyParams
from repro.routing.registry import ROUTING_STRATEGIES
from repro.serialization import SpecError
from repro.spec import (
    PHY_PROFILES,
    MacSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologyRef,
    TrafficSpec,
)
from repro.topology.registry import TOPOLOGIES
from repro.topology.standard import fig1_topology
from repro.traffic.registry import TRAFFIC_KINDS


def roundtrip(spec):
    """to_dict → (json) → from_dict → to_dict must be the identity."""
    first = spec.to_dict()
    rebuilt = type(spec).from_dict(json.loads(json.dumps(first)))
    assert rebuilt.to_dict() == first
    return rebuilt


class TestComponentSpecRoundTrips:
    """Every registered component's spec round-trips losslessly."""

    @pytest.mark.parametrize("name", sorted(MAC_SCHEMES))
    def test_mac_specs(self, name):
        rebuilt = roundtrip(MacSpec(name, {"max_aggregation": 4}))
        assert rebuilt == MacSpec(name, {"max_aggregation": 4})

    @pytest.mark.parametrize("name", sorted(ROUTING_STRATEGIES))
    def test_routing_specs(self, name):
        roundtrip(RoutingSpec(name))

    @pytest.mark.parametrize("name", sorted(TRAFFIC_KINDS) + ["flows"])
    def test_traffic_specs(self, name):
        roundtrip(TrafficSpec(name))

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_topology_refs(self, name):
        roundtrip(TopologyRef(name))

    @pytest.mark.parametrize("model", sorted(MOBILITY_MODELS))
    def test_mobility_specs(self, model):
        roundtrip(MobilitySpec(model=model))

    @pytest.mark.parametrize("profile", sorted(PHY_PROFILES))
    def test_phy_profiles(self, profile):
        params = PHY_PROFILES[profile]
        assert PhyParams.from_dict(params.to_dict()) == params
        assert "max_deviation_sigmas" in params.to_dict()

    def test_scenario_spec_with_ref(self):
        spec = ScenarioSpec(
            topology=TopologyRef("line", {"n_hops": 4}),
            mac=MacSpec("ripple"),
            routing=RoutingSpec("etx"),
            traffic=TrafficSpec("voip"),
            mobility=MobilitySpec.random_waypoint(3.0),
            phy="low_rate",
            duration_s=0.25,
            seed=9,
        )
        rebuilt = roundtrip(spec)
        assert isinstance(rebuilt.topology, TopologyRef)
        config = rebuilt.to_config()
        assert config.phy == LOW_RATE_PHY
        assert config.topology.name == "line4"

    def test_scenario_spec_with_inline_topology(self):
        spec = ScenarioSpec(topology=fig1_topology(), scheme_label="R16")
        rebuilt = roundtrip(spec)
        assert rebuilt.to_config().scheme_label == "R16"


class TestStrictFromDict:
    """Unknown keys are rejected with an error naming field and class."""

    def test_component_spec_unknown_key(self):
        with pytest.raises(SpecError, match="'colour' for MacSpec"):
            MacSpec.from_dict({"name": "dcf", "colour": "red"})

    def test_phy_params_unknown_key(self):
        with pytest.raises(SpecError, match="'biterror_rate' for PhyParams"):
            PhyParams.from_dict({"biterror_rate": 1e-6})

    def test_mobility_spec_unknown_key(self):
        with pytest.raises(SpecError, match="'speed' for MobilitySpec"):
            MobilitySpec.from_dict({"model": "static", "speed": 3})

    def test_topology_spec_unknown_key(self):
        from repro.topology.spec import TopologySpec

        data = fig1_topology().to_dict()
        data["colour"] = "red"
        with pytest.raises(SpecError, match="'colour' for TopologySpec"):
            TopologySpec.from_dict(data)

    def test_flow_spec_unknown_key(self):
        from repro.topology.spec import FlowSpec

        with pytest.raises(SpecError, match="'rate' for FlowSpec"):
            FlowSpec.from_dict({"flow_id": 1, "src": 0, "dst": 1, "rate": 5})

    def test_flow_result_unknown_key(self):
        from repro.metrics.flows import FlowResult

        with pytest.raises(SpecError, match="'goodput' for FlowResult"):
            FlowResult.from_dict(
                {"flow_id": 1, "kind": "tcp", "src": 0, "dst": 1,
                 "throughput_mbps": 1.0, "goodput": 2.0}
            )

    def test_voip_quality_unknown_key(self):
        from repro.metrics.mos import VoipQuality

        with pytest.raises(SpecError, match="'jitter' for VoipQuality"):
            VoipQuality.from_dict(
                {"delay_ms": 1.0, "loss_rate": 0.0, "r_factor": 90.0, "mos": 4.3, "jitter": 1}
            )

    def test_scenario_config_unknown_key(self):
        data = ScenarioConfig(topology=fig1_topology()).to_dict()
        data["scheme"] = "D"
        with pytest.raises(SpecError, match="'scheme' for ScenarioConfig"):
            ScenarioConfig.from_dict(data)

    def test_scenario_spec_unknown_key(self):
        with pytest.raises(SpecError, match="'schemes' for ScenarioSpec"):
            ScenarioSpec.from_dict({"topology": {"name": "fig1"}, "schemes": ["D"]})

    def test_unknown_component_name_rejected_at_construction(self):
        with pytest.raises(SpecError, match="unknown MAC scheme 'warp'"):
            MacSpec("warp")
        with pytest.raises(SpecError, match="unknown topology 'moon'"):
            TopologyRef("moon")


class TestAliasLayer:
    """scheme_label is sugar over the spec layer; both forms are one scenario."""

    @pytest.mark.parametrize("label", sorted(PAPER_SCHEMES))
    def test_expansion_round_trips_through_canonical_label(self, label):
        mac, routing = expand_scheme_label(label, "ROUTE0")
        legacy = ScenarioConfig(topology=fig1_topology(), scheme_label=label)
        explicit = ScenarioConfig(topology=fig1_topology(), mac=mac, routing=routing)
        assert legacy.to_dict() == explicit.to_dict()
        assert config_digest(legacy) == config_digest(explicit)

    def test_legacy_dict_layout_unchanged(self):
        """Label-only configs keep the flat pre-spec dict layout."""
        data = ScenarioConfig(topology=fig1_topology(), scheme_label="A").to_dict()
        assert data["scheme_label"] == "A"
        assert "mac" not in data and "routing" not in data and "traffic" not in data

    def test_non_alias_combination_serializes_specs(self):
        config = ScenarioConfig(
            topology=fig1_topology(),
            mac=MacSpec("ripple"),
            routing=RoutingSpec("shortest_path"),
        )
        data = config.to_dict()
        assert data["scheme_label"] is None
        assert data["mac"] == {"name": "ripple", "params": {}}
        assert data["routing"] == {"name": "shortest_path", "params": {}}
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.to_dict() == data

    def test_alias_name_canonicalized_in_digest(self):
        """RoutingSpec('etx') and RoutingSpec('adaptive_etx') are one digest."""
        base = dict(topology=fig1_topology(), mac=MacSpec("dcf"))
        a = ScenarioConfig(routing=RoutingSpec("etx"), **base)
        b = ScenarioConfig(routing=RoutingSpec("adaptive_etx"), **base)
        assert a.to_dict() == b.to_dict()
        assert config_digest(a) == config_digest(b)

    def test_s_label_expands_to_direct_route_set(self):
        mac, routing = expand_scheme_label("S", "ROUTE0")
        assert mac.name == "dcf"
        assert routing.params == {"route_set": "DIRECT"}


class TestSpecPathDeterminism:
    """The registry-driven path is bit-identical to the legacy label path."""

    def test_legacy_and_spec_configs_produce_identical_results(self):
        legacy = ScenarioConfig(
            topology=fig1_topology(), scheme_label="R16",
            active_flows=[1], duration_s=0.1, seed=4,
        )
        mac, routing = expand_scheme_label("R16", legacy.route_set)
        explicit = ScenarioConfig(
            topology=fig1_topology(), mac=mac, routing=routing,
            active_flows=[1], duration_s=0.1, seed=4,
        )
        first = run_scenario(legacy)
        second = run_scenario(explicit)
        assert first.to_dict() == second.to_dict()

    def test_scenario_spec_to_config_runs_identically_to_legacy(self):
        spec = ScenarioSpec(
            topology=TopologyRef("fig1"), scheme_label="A",
            active_flows=[1], duration_s=0.1, seed=2,
        )
        legacy = ScenarioConfig(
            topology=fig1_topology(), scheme_label="A",
            active_flows=[1], duration_s=0.1, seed=2,
        )
        assert run_scenario(spec.to_config()).to_dict() == run_scenario(legacy).to_dict()

    def test_traffic_override_changes_the_scenario(self):
        base = dict(topology=fig1_topology(), active_flows=[1], duration_s=0.05, seed=1)
        tcp = run_scenario(ScenarioConfig(**base))
        voip = run_scenario(ScenarioConfig(traffic=TrafficSpec("voip"), **base))
        assert tcp.flows[0].kind == "tcp"
        assert voip.flows[0].kind == "udp"
        assert 1 in voip.voip_quality


class TestComponentParamValidation:
    """Unknown component parameters fail loudly, not by silent default."""

    def test_typoed_mac_param_raises_at_install(self):
        config = ScenarioConfig(
            topology=fig1_topology(),
            mac=MacSpec("ripple", {"max_agregation": 8}),  # typo'd on purpose
            duration_s=0.02,
        )
        with pytest.raises(ValueError, match="max_agregation.*ripple"):
            run_scenario(config)

    def test_valid_mac_params_still_accepted(self):
        config = ScenarioConfig(
            topology=fig1_topology(),
            mac=MacSpec("ripple", {"max_aggregation": 2, "aggregate_local_traffic": False}),
            active_flows=[1],
            duration_s=0.02,
        )
        assert run_scenario(config).events_processed > 0

    def test_adaptive_etx_missing_fallback_route_set_raises(self):
        config = ScenarioConfig(
            topology=fig1_topology(),
            mac=MacSpec("dcf"),
            routing=RoutingSpec("etx", {"route_set": "ROUTE9"}),
            duration_s=0.02,
        )
        with pytest.raises(KeyError, match="ROUTE9"):
            run_scenario(config)

    def test_adaptive_etx_fallback_opt_out(self):
        from repro.experiments.runner import build_network
        from repro.routing.dynamic import AdaptiveEtxRouting

        config = ScenarioConfig(
            topology=fig1_topology(),
            mac=MacSpec("dcf"),
            routing=RoutingSpec("etx", {"fallback": False}),
        )
        _network, routing = build_network(config)
        assert isinstance(routing, AdaptiveEtxRouting)
        assert routing.fallback is None


class TestPhyProfileResolution:
    def test_high_rate_profile_resolves(self):
        spec = ScenarioSpec(topology=TopologyRef("fig1"), phy="high_rate")
        assert spec.to_config().phy == HIGH_RATE_PHY

    def test_unknown_profile_rejected(self):
        with pytest.raises(SpecError, match="unknown PHY profile"):
            ScenarioSpec.from_dict({"topology": {"name": "fig1"}, "phy": "warp_speed"})
