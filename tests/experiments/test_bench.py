"""repro.bench: the performance-baseline subsystem and its CLI."""

import json

import pytest

from repro.experiments.bench import (
    BenchCase,
    default_cases,
    dispatch_micro,
    format_report,
    git_revision,
    quick_cases,
    run_bench,
    run_case,
    write_report,
)
from repro.experiments.runner import ScenarioConfig
from repro.topology.standard import line_topology


def tiny_case(scheme="D", duration_s=0.02):
    config = ScenarioConfig(
        topology=line_topology(2), scheme_label=scheme, duration_s=duration_s, seed=1
    )
    return BenchCase(family="line-tiny", scheme=scheme, config=config)


class TestMatrix:
    def test_default_matrix_covers_families_times_schemes(self):
        cases = default_cases(duration_s=0.1)
        names = {case.name for case in cases}
        assert len(cases) == 6 * 4  # six families, D/A/R1/R16
        assert "roofnet/R16" in names and "wigle/D" in names
        assert "mobility/A" in names and "line-noisy/R1" in names
        assert "line-cubic/R16" in names

    def test_family_filter_and_unknown_family(self):
        cases = default_cases(duration_s=0.1, families=("roofnet",), schemes=("D",))
        assert [case.name for case in cases] == ["roofnet/D"]
        with pytest.raises(ValueError):
            default_cases(families=("nope",))

    def test_quick_subset_is_small(self):
        cases = quick_cases()
        assert {case.family for case in cases} == {"line-clear", "line-cubic", "roofnet"}
        assert {case.scheme for case in cases} == {"D", "R16"}


class TestExecution:
    def test_run_case_times_a_simulation(self):
        outcome = run_case(tiny_case())
        assert outcome.events > 0
        assert outcome.wall_s > 0
        assert outcome.events_per_sec > 0
        assert outcome.name == "line-tiny/D"

    def test_repeats_keep_best_wall_time(self):
        single = run_case(tiny_case(), repeats=1)
        repeated = run_case(tiny_case(), repeats=3)
        # Same deterministic simulation: identical event count either way.
        assert repeated.events == single.events

    def test_report_json_round_trip(self, tmp_path):
        report = run_bench([tiny_case("D"), tiny_case("R16")], revision="testrev")
        target = write_report(report, tmp_path / "bench.json")
        data = json.loads(target.read_text())
        assert data["revision"] == "testrev"
        assert len(data["cases"]) == 2
        for case in data["cases"]:
            assert case["events_per_sec"] > 0
        assert data["summary"]["total_events"] == sum(c["events"] for c in data["cases"])
        assert data["summary"]["events_per_sec_by_family"]["line-tiny"] > 0

    def test_default_output_name_embeds_revision(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = run_bench([tiny_case()], revision="abc1234")
        target = write_report(report)
        assert target.name == "BENCH_abc1234.json"
        assert target.exists()

    def test_format_report_renders_every_case(self):
        report = run_bench([tiny_case("D")], revision="r")
        text = format_report(report)
        assert "line-tiny/D" in text and "events/s" in text

    def test_git_revision_is_a_short_string(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev
        assert "\n" not in rev

    def test_dispatch_micro_times_the_raw_hot_path(self):
        micro = dispatch_micro("line", frames=50)
        assert micro["topology"] == "line"
        assert micro["frames"] == 50
        assert micro["transmissions_per_sec"] > 0
        assert micro["events"] > 0
        assert micro["wall_s"] <= micro["total_wall_s"]
        with pytest.raises(ValueError):
            dispatch_micro("not-a-topology")

    def test_run_bench_attaches_dispatch_micros(self):
        report = run_bench(
            [tiny_case()], revision="r", dispatch_topologies=("line",)
        )
        data = report.to_dict()
        assert len(data["dispatch"]) == 1
        assert data["dispatch"][0]["topology"] == "line"
        assert "dispatch/line" in format_report(report)


class TestCli:
    def test_bench_subcommand_quick(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--duration", "0.01", "--output", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert {case["family"] for case in data["cases"]} == {
            "line-clear", "line-cubic", "roofnet"
        }
        stdout = capsys.readouterr().out
        assert "roofnet/R16" in stdout

    def test_quick_honors_explicit_family_and_scheme_filters(self, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "q.json"
        code = main(
            [
                "bench", "--quick", "--families", "line-clear", "--schemes", "R1",
                "--duration", "0.01", "--no-dispatch", "--output", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert [case["name"] for case in data["cases"]] == ["line-clear/R1"]

    def test_bench_subcommand_family_selection(self, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "b.json"
        code = main(
            [
                "bench", "--families", "line-clear", "--schemes", "D",
                "--duration", "0.01", "--output", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert [case["name"] for case in data["cases"]] == ["line-clear/D"]
