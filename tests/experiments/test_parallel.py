"""Parallel sweep runner: grids, digests, caching, and serial/parallel parity."""

import json

import pytest

from repro.experiments.parallel import (
    ResultCache,
    SweepRunner,
    config_digest,
    expand_grid,
)
from repro.experiments.runner import (
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
    sweep_schemes,
)
from repro.topology.standard import fig1_topology


def small_config(**overrides):
    defaults = dict(
        topology=fig1_topology(),
        scheme_label="D",
        active_flows=[1],
        duration_s=0.05,
        seed=2,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfigDigest:
    def test_digest_is_stable(self):
        assert config_digest(small_config()) == config_digest(small_config())

    def test_digest_changes_with_any_field(self):
        base = config_digest(small_config())
        assert config_digest(small_config(seed=3)) != base
        assert config_digest(small_config(scheme_label="R16")) != base
        assert config_digest(small_config(bit_error_rate=1e-5)) != base
        assert config_digest(small_config(warmup_s=0.01)) != base

    def test_digest_survives_serialization_roundtrip(self):
        config = small_config(scheme_label="R16", max_aggregation=4)
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert config_digest(rebuilt) == config_digest(config)


class TestCacheSchemaVersion:
    """Schema bumps must actually reach the digest (cache-soundness)."""

    def test_version_pinned_to_transport_counters_bump(self):
        # 6 = transport registry: cached result payloads gained per-flow
        # transport counters (retransmissions, fast_retransmits, timeouts,
        # rto_backoffs — and packets_sent is now the sender's count for TCP
        # flows), which schema-5 entries lack.  Bump this pin together with
        # the constant — never adjust the pin alone.
        import repro.experiments.parallel as parallel

        assert parallel.CACHE_SCHEMA_VERSION == 6

    def test_digest_incorporates_schema_version(self, monkeypatch):
        """An old-schema digest must differ for the *same* config.

        This is the regression guard for the bump itself: if someone bumps
        the constant but the digest stops covering it (refactor drops the
        field, renames it, or hardcodes a literal), cached pre-bump results
        would silently satisfy post-bump lookups.
        """
        import repro.experiments.parallel as parallel

        config = small_config()
        current = config_digest(config)
        monkeypatch.setattr(parallel, "CACHE_SCHEMA_VERSION", 5)
        assert config_digest(config) != current


class TestSerializationRoundTrip:
    def test_scenario_result_roundtrip_is_lossless(self):
        result = run_scenario(small_config())
        data = json.loads(json.dumps(result.to_dict()))
        rebuilt = ScenarioResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.total_throughput_mbps == result.total_throughput_mbps
        assert rebuilt.events_processed == result.events_processed

    def test_voip_quality_roundtrip(self):
        from repro.experiments.voip import voip_topology

        config = ScenarioConfig(
            topology=voip_topology(1),
            scheme_label="D",
            active_flows=[1],
            duration_s=0.1,
            seed=2,
        )
        result = run_scenario(config)
        rebuilt = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert set(rebuilt.voip_quality) == set(result.voip_quality)
        for flow_id, quality in result.voip_quality.items():
            assert rebuilt.voip_quality[flow_id] == quality


class TestExpandGrid:
    def test_cartesian_product_order(self):
        grid = expand_grid(small_config(), scheme_label=["D", "R16"], seed=[1, 2])
        assert [(c.scheme_label, c.seed) for c in grid] == [
            ("D", 1), ("D", 2), ("R16", 1), ("R16", 2)
        ]

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            expand_grid(small_config(), not_a_field=[1, 2])

    def test_empty_axes_yield_base(self):
        grid = expand_grid(small_config())
        assert len(grid) == 1
        assert grid[0].scheme_label == "D"


class TestSweepRunner:
    def test_results_in_input_order(self):
        grid = expand_grid(small_config(), scheme_label=["D", "R1"])
        results = SweepRunner().run(grid)
        assert [r.config.scheme_label for r in results] == ["D", "R1"]

    def test_parallel_matches_serial_bit_for_bit(self):
        grid = expand_grid(small_config(), scheme_label=["D", "R16"], seed=[1, 2])
        serial = SweepRunner(jobs=1).run(grid)
        parallel = SweepRunner(jobs=4).run(grid)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_runner_matches_direct_run_scenario(self):
        config = small_config()
        assert SweepRunner().run_one(config).to_dict() == run_scenario(config).to_dict()

    def test_sweep_schemes_goes_through_runner(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = small_config()
        first = sweep_schemes(base, ("D", "R1"), runner=SweepRunner(cache=cache))
        assert cache.misses == 2 and cache.hits == 0
        second = sweep_schemes(base, ("D", "R1"), runner=SweepRunner(cache=cache))
        assert cache.hits == 2
        assert {k: v.to_dict() for k, v in first.items()} == {
            k: v.to_dict() for k, v in second.items()
        }


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        assert cache.load(config) is None
        assert cache.misses == 1
        result = run_scenario(config)
        cache.store(config, result)
        cached = cache.load(config)
        assert cached is not None and cache.hits == 1
        assert cached.to_dict() == result.to_dict()

    def test_second_sweep_served_from_cache(self, tmp_path):
        grid = expand_grid(small_config(), scheme_label=["D", "R1"], seed=[1, 2])
        cache = ResultCache(tmp_path)
        first = SweepRunner(jobs=1, cache=cache).run(grid)
        assert cache.hits == 0 and cache.misses == len(grid)
        second = SweepRunner(jobs=1, cache=cache).run(grid)
        assert cache.hits == len(grid)
        assert [r.to_dict() for r in second] == [r.to_dict() for r in first]

    def test_same_config_and_seed_give_identical_cached_result(self, tmp_path):
        # Determinism end to end: simulate twice into two separate caches and
        # compare the bytes on disk.
        config = small_config(scheme_label="R16", seed=4)
        digest = config_digest(config)
        payloads = []
        for subdir in ("a", "b"):
            cache = ResultCache(tmp_path / subdir)
            SweepRunner(cache=cache).run([config])
            payloads.append(cache.path_for(digest).read_text())
        assert payloads[0] == payloads[1]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        path = cache.path_for(config_digest(config))
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load(config) is None
        # And the runner transparently re-simulates and repairs the entry.
        result = SweepRunner(cache=cache).run_one(config)
        assert cache.load(config).to_dict() == result.to_dict()
