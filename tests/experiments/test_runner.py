"""Experiment harness: scheme mapping, scenario construction, result collection."""

import pytest

from repro.experiments.report import format_table, nested_to_rows, render_panel
from repro.experiments.runner import (
    DEFAULT_SCHEME_LABELS,
    PAPER_SCHEMES,
    ScenarioConfig,
    build_network,
    resolve_scheme,
    run_scenario,
)
from repro.topology.standard import fig1_topology, line_topology


class TestSchemeMapping:
    def test_paper_labels_cover_the_figures(self):
        assert set(DEFAULT_SCHEME_LABELS) == {"S", "D", "R1", "A", "R16"}

    def test_s_uses_direct_route(self):
        scheme, route_set = resolve_scheme("S", "ROUTE0")
        assert scheme == "dcf" and route_set == "DIRECT"

    def test_d_uses_requested_route(self):
        scheme, route_set = resolve_scheme("D", "ROUTE2")
        assert scheme == "dcf" and route_set == "ROUTE2"

    def test_r16_is_ripple(self):
        assert resolve_scheme("R16", "ROUTE0") == ("ripple", "ROUTE0")

    def test_r1_is_ripple_without_aggregation(self):
        assert resolve_scheme("R1", "ROUTE0") == ("ripple1", "ROUTE0")

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            resolve_scheme("XYZ", "ROUTE0")

    def test_all_labels_resolve(self):
        for label in PAPER_SCHEMES:
            scheme, route_set = resolve_scheme(label, "ROUTE0")
            assert isinstance(scheme, str) and isinstance(route_set, str)


class TestBuildNetwork:
    def test_nodes_and_stack_installed(self):
        config = ScenarioConfig(topology=fig1_topology(), scheme_label="D")
        network, routing = build_network(config)
        assert len(network.nodes) == 8
        assert all(node.mac is not None for node in network.nodes.values())
        assert all(node.transport is not None for node in network.nodes.values())

    def test_max_aggregation_override(self):
        config = ScenarioConfig(topology=fig1_topology(), scheme_label="R16", max_aggregation=4)
        network, _ = build_network(config)
        assert network.node(0).mac.max_aggregation == 4

    def test_missing_route_set_rejected(self):
        config = ScenarioConfig(topology=line_topology(3), scheme_label="D", route_set="ROUTE9")
        with pytest.raises(KeyError):
            build_network(config)


class TestRunScenario:
    def test_tcp_flow_produces_throughput(self):
        config = ScenarioConfig(
            topology=fig1_topology(), scheme_label="D", active_flows=[1], duration_s=0.15, seed=2
        )
        result = run_scenario(config)
        assert len(result.flows) == 1
        assert result.total_throughput_mbps > 1.0
        assert result.flow_throughput(1) == result.flows[0].throughput_mbps
        assert result.events_processed > 1000

    def test_udp_saturating_flow(self):
        from repro.topology.standard import fig5b_topology

        config = ScenarioConfig(
            topology=fig5b_topology(n_hidden=1), scheme_label="D", duration_s=0.15, seed=2
        )
        result = run_scenario(config)
        kinds = {flow.kind for flow in result.flows}
        assert kinds == {"tcp", "udp"}
        udp = [flow for flow in result.flows if flow.kind == "udp"][0]
        assert udp.packets_received > 0

    def test_unknown_flow_id_raises(self):
        config = ScenarioConfig(
            topology=fig1_topology(), scheme_label="D", active_flows=[1], duration_s=0.1
        )
        result = run_scenario(config)
        with pytest.raises(KeyError):
            result.flow_throughput(42)

    def test_deterministic_for_fixed_seed(self):
        config = ScenarioConfig(
            topology=fig1_topology(), scheme_label="R16", active_flows=[1], duration_s=0.1, seed=4
        )
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.total_throughput_mbps == second.total_throughput_mbps
        assert first.events_processed == second.events_processed

    def test_different_seeds_differ(self):
        base = dict(topology=fig1_topology(), scheme_label="D", active_flows=[1], duration_s=0.1)
        a = run_scenario(ScenarioConfig(**base, seed=1))
        b = run_scenario(ScenarioConfig(**base, seed=2))
        assert a.events_processed != b.events_processed


class TestWarmupAccounting:
    """Warmup-period traffic must not count towards the reported summaries."""

    def test_tcp_throughput_excludes_warmup_bytes(self):
        # Under the old accounting, bytes accumulated since t=0 were divided
        # by duration_ns only, so warmup=0.1/duration=0.1 reported ~2x the
        # throughput of the same scenario measured over the full 0.2 s.
        base = dict(topology=fig1_topology(), scheme_label="D", active_flows=[1], seed=2)
        full = run_scenario(ScenarioConfig(**base, duration_s=0.2, warmup_s=0.0))
        warm = run_scenario(ScenarioConfig(**base, duration_s=0.1, warmup_s=0.1))
        assert warm.total_throughput_mbps > 0
        assert warm.total_throughput_mbps < 1.5 * full.total_throughput_mbps

    def test_warmup_resets_received_counters(self):
        base = dict(topology=fig1_topology(), scheme_label="D", active_flows=[1], seed=2)
        full = run_scenario(ScenarioConfig(**base, duration_s=0.2, warmup_s=0.0))
        warm = run_scenario(ScenarioConfig(**base, duration_s=0.1, warmup_s=0.1))
        # Both simulations see the same event stream; the warmed-up one only
        # reports the second half of it.
        assert warm.flows[0].packets_received < full.flows[0].packets_received

    def test_udp_throughput_excludes_warmup_bytes(self):
        from repro.topology.standard import fig5b_topology

        base = dict(topology=fig5b_topology(n_hidden=1), scheme_label="D", seed=2)
        full = run_scenario(ScenarioConfig(**base, duration_s=0.2, warmup_s=0.0))
        warm = run_scenario(ScenarioConfig(**base, duration_s=0.1, warmup_s=0.1))
        full_udp = [f for f in full.flows if f.kind == "udp"][0]
        warm_udp = [f for f in warm.flows if f.kind == "udp"][0]
        assert warm_udp.packets_received > 0
        assert warm_udp.throughput_mbps < 1.5 * full_udp.throughput_mbps
        # packets_sent is the sender-side count for the measurement window.
        assert warm_udp.packets_sent < full_udp.packets_sent

    def test_zero_warmup_unchanged(self):
        config = ScenarioConfig(
            topology=fig1_topology(), scheme_label="D", active_flows=[1], duration_s=0.1, seed=2
        )
        a = run_scenario(config)
        b = run_scenario(ScenarioConfig(**{**config.__dict__, "warmup_s": 0.0}))
        assert a.total_throughput_mbps == b.total_throughput_mbps


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("title", ["1", "2"], {"D": [1.0, 2.0], "R16": [3.0, 4.5]})
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "scheme" in lines[1]
        assert any("R16" in line for line in lines)

    def test_nested_to_rows_handles_missing(self):
        rows = nested_to_rows({"D": {1: 5.0}}, [1, 2])
        assert rows["D"][0] == 5.0
        assert rows["D"][1] != rows["D"][1]  # NaN for the missing column

    def test_render_panel(self):
        text = render_panel("Fig X", {"D": {1: 1.0, 2: 2.0}}, [1, 2])
        assert "Fig X" in text and "D" in text
