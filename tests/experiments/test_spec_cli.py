"""``run --spec/--set``: arbitrary component combinations from the CLI."""

import json

import pytest

from repro.experiments.__main__ import _apply_sets, main
from repro.serialization import SpecError


class TestApplySets:
    def test_component_names_and_params(self):
        data = _apply_sets(
            {},
            ["topology=line", "topology.n_hops=3", "mac=ripple",
             "mac.max_aggregation=8", "routing=etx", "traffic=voip"],
        )
        assert data["topology"] == {"name": "line", "params": {"n_hops": 3}}
        assert data["mac"] == {"name": "ripple", "params": {"max_aggregation": 8}}
        assert data["routing"] == {"name": "etx"}
        assert data["traffic"] == {"name": "voip"}

    def test_scalar_aliases(self):
        data = _apply_sets({}, ["duration=0.5", "ber=1e-5", "scheme=R16", "seed=3"])
        assert data == {
            "duration_s": 0.5, "bit_error_rate": 1e-5, "scheme_label": "R16", "seed": 3,
        }

    def test_flows_list_parsing(self):
        assert _apply_sets({}, ["flows=1,2,3"])["active_flows"] == [1, 2, 3]
        assert _apply_sets({}, ["flows=1"])["active_flows"] == [1]

    def test_mobility_speed_shorthand(self):
        data = _apply_sets({}, ["mobility=random_waypoint", "mobility.speed=5"])
        assert data["mobility"]["model"] == "random_waypoint"
        assert data["mobility"]["params"] == {
            "speed_min_mps": 5.0, "speed_max_mps": 5.0,
        }

    def test_mobility_cadence_keys_go_to_spec_fields(self):
        data = _apply_sets({}, ["mobility=random_waypoint", "mobility.update_interval_s=0.1"])
        assert data["mobility"]["update_interval_s"] == 0.1

    def test_phy_profile_then_override(self):
        data = _apply_sets({}, ["phy=low_rate", "phy.max_deviation_sigmas=4"])
        assert data["phy"]["data_rate_bps"] == 6e6
        assert data["phy"]["max_deviation_sigmas"] == 4

    def test_assignment_order_is_irrelevant(self):
        """Names apply before dotted params, whatever the CLI order."""
        forward = _apply_sets({}, ["phy=low_rate", "phy.max_deviation_sigmas=4"])
        reverse = _apply_sets({}, ["phy.max_deviation_sigmas=4", "phy=low_rate"])
        assert forward == reverse
        mob = _apply_sets({}, ["mobility.speed=5", "mobility=random_waypoint"])
        assert mob["mobility"]["params"]["speed_max_mps"] == 5.0

    def test_dotted_override_on_wrapped_topology_ref(self):
        """to_dict-round-tripped spec files ({'ref': ...}) stay overridable."""
        base = {"topology": {"ref": {"name": "line", "params": {"n_hops": 4}}}}
        data = _apply_sets(base, ["topology.n_hops=8"])
        assert data["topology"] == {"name": "line", "params": {"n_hops": 8}}
        untouched = _apply_sets(dict(base), ["seed=2"])
        assert untouched["topology"] == base["topology"]

    def test_dotted_override_on_inline_topology_rejected(self):
        from repro.topology.standard import fig1_topology

        base = {"topology": fig1_topology().to_dict()}
        with pytest.raises(SpecError, match="inline topology"):
            _apply_sets(base, ["topology.n_hops=8"])
        # but naming a builder replaces the inline layout wholesale
        data = _apply_sets(base, ["topology=line", "topology.n_hops=3"])
        assert data["topology"] == {"name": "line", "params": {"n_hops": 3}}

    def test_param_without_component_name_rejected(self):
        with pytest.raises(SpecError, match="without naming the component"):
            _apply_sets({}, ["mac.max_aggregation=8"])

    def test_missing_equals_rejected(self):
        with pytest.raises(SpecError, match="key=value"):
            _apply_sets({}, ["topology"])

    def test_unknown_dotted_component_rejected(self):
        with pytest.raises(SpecError, match="unknown component 'warp'"):
            _apply_sets({}, ["warp.factor=9"])

    def test_overrides_apply_on_top_of_spec_document(self):
        base = {"topology": {"name": "line", "params": {"n_hops": 4}}, "seed": 1}
        data = _apply_sets(base, ["seed=7", "topology.n_hops=3"])
        assert data["seed"] == 7
        assert data["topology"]["params"]["n_hops"] == 3


class TestRunSpecCli:
    def test_set_runs_arbitrary_combination(self, capsys):
        code = main([
            "run", "--no-cache",
            "--set", "topology=line", "topology.n_hops=3", "mac=dcf", "duration=0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "topology=line mac=dcf routing=static traffic=flows" in out
        assert "total TCP Mb/s" in out

    def test_spec_file_with_set_override(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({
            "topology": {"name": "line", "params": {"n_hops": 3}},
            "mac": {"name": "afr"},
            "duration_s": 0.05,
        }))
        code = main(["run", "--no-cache", "--spec", str(path), "--set", "seed=2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mac=afr" in out and "seed=2" in out

    def test_traffic_override_reports_mos(self, capsys):
        code = main([
            "run", "--no-cache",
            "--set", "topology=fig1", "traffic=voip", "flows=1", "duration=0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "traffic=voip" in out
        assert "udp" in out

    def test_seeds_expand_spec_runs(self, capsys):
        code = main([
            "run", "--no-cache", "--seeds", "2",
            "--set", "topology=line", "topology.n_hops=2", "duration=0.02",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "seed=1" in out and "seed=2" in out

    def test_spec_results_are_cached(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["run", "--set", "topology=line", "topology.n_hops=2", "duration=0.02"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0/1 hits" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1/1 hits" in second

    def test_unknown_component_is_a_clean_error(self, capsys):
        code = main(["run", "--no-cache", "--set", "topology=line", "mac=warp"])
        assert code == 2
        assert "bad scenario spec" in capsys.readouterr().err

    def test_missing_topology_is_a_clean_error(self, capsys):
        code = main(["run", "--no-cache", "--set", "mac=dcf"])
        assert code == 2
        assert "needs a topology" in capsys.readouterr().err

    def test_names_and_spec_are_mutually_exclusive(self, capsys):
        code = main(["run", "fig3", "--set", "topology=line"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_run_without_names_or_spec_is_an_error(self, capsys):
        code = main(["run"])
        assert code == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_list_shows_component_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "component registries" in out
        assert "MAC scheme:" in out and "ripple" in out


class TestRunJson:
    """``run --spec/--set --json``: machine-readable results on stdout."""

    ARGV = [
        "run", "--json",
        "--set", "topology=line", "topology.n_hops=2", "duration=0.02",
    ]

    def test_json_output_carries_digest_config_result(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments.parallel import config_digest
        from repro.experiments.runner import ScenarioConfig

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(self.ARGV) == 0
        captured = capsys.readouterr()
        entries = json.loads(captured.out)
        assert len(entries) == 1
        entry = entries[0]
        assert sorted(entry) == ["config", "digest", "result"]
        # The digest is the config's real content hash, so service results
        # addressed by digest line up with this output byte for byte.
        config = ScenarioConfig.from_dict(entry["config"])
        assert entry["digest"] == config_digest(config)
        assert entry["result"]["events_processed"] > 0
        # Human-facing cache summary moved to stderr; stdout stays pure JSON.
        assert "hits" in captured.err

    def test_json_run_twice_is_byte_identical(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(self.ARGV) == 0
        first = capsys.readouterr().out
        assert main(self.ARGV) == 0  # second run is a pure cache hit
        assert capsys.readouterr().out == first

    def test_json_with_seeds_emits_one_entry_per_seed(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(self.ARGV + ["--seeds", "2"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["config"]["seed"] for entry in entries] == [1, 2]
        assert len({entry["digest"] for entry in entries}) == 2

    def test_json_without_spec_mode_rejected(self, capsys):
        assert main(["run", "fig3", "--json"]) == 2
        assert "--json needs" in capsys.readouterr().err
