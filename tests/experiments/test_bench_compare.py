"""``bench compare``: per-case events/s deltas and the regression gate."""

import json

import pytest

from repro.experiments.bench import compare_reports, compare_reports_data, load_report


def report(revision, cases, dispatch=()):
    return {
        "revision": revision,
        "cases": [
            {
                "name": name,
                "family": name.split("/")[0],
                "scheme": name.split("/")[1],
                "sim_duration_s": duration,
                "events": 1000,
                "wall_s": 1.0,
                "events_per_sec": eps,
                "throughput_mbps": 1.0,
            }
            for name, eps, duration in cases
        ],
        "dispatch": [
            {"topology": topology, "transmissions_per_sec": tps}
            for topology, tps in dispatch
        ],
    }


class TestCompareReports:
    def test_no_regression_within_threshold(self):
        base = report("aaa", [("line/D", 100_000, 2.0)])
        cur = report("bbb", [("line/D", 96_000, 2.0)])
        text, regressions = compare_reports(base, cur, threshold_pct=5.0)
        assert regressions == []
        assert "no regressions" in text
        assert "-4.0%" in text

    def test_regression_beyond_threshold_detected(self):
        base = report("aaa", [("line/D", 100_000, 2.0), ("roofnet/R16", 200_000, 2.0)])
        cur = report("bbb", [("line/D", 100_500, 2.0), ("roofnet/R16", 150_000, 2.0)])
        text, regressions = compare_reports(base, cur, threshold_pct=10.0)
        assert regressions == ["roofnet/R16"]
        assert "REGRESSION" in text

    def test_dispatch_micros_compared(self):
        base = report("aaa", [], dispatch=[("roofnet", 10_000)])
        cur = report("bbb", [], dispatch=[("roofnet", 5_000)])
        _text, regressions = compare_reports(base, cur, threshold_pct=5.0)
        assert regressions == ["dispatch/roofnet"]

    def test_mismatched_durations_flagged_not_gated(self):
        base = report("aaa", [("line/D", 100_000, 2.0)])
        cur = report("bbb", [("line/D", 10_000, 0.05)])
        text, regressions = compare_reports(base, cur, threshold_pct=5.0)
        assert regressions == []
        assert "durations differ" in text

    def test_one_sided_cases_shown_not_gated(self):
        base = report("aaa", [("line/D", 100_000, 2.0)])
        cur = report("bbb", [("wigle/D", 90_000, 2.0)])
        text, regressions = compare_reports(base, cur, threshold_pct=5.0)
        assert regressions == []
        assert "only in baseline" in text and "only in current" in text

    def test_differing_case_sets_report_symmetric_difference(self):
        """Renamed cases: intersection compared, difference summarised."""
        base = report(
            "aaa", [("line/D", 100_000, 2.0), ("line-clear/D", 100_000, 2.0)]
        )
        cur = report(
            "bbb", [("line5/D", 90_000, 2.0), ("line-clear/D", 40_000, 2.0)]
        )
        text, regressions = compare_reports(base, cur, threshold_pct=5.0)
        # Only the common case gates; the renamed pair is reported, not compared.
        assert regressions == ["line-clear/D"]
        assert "case sets differ" in text
        assert "only in baseline: line/D" in text
        assert "only in current: line5/D" in text

    def test_cases_without_name_field_fall_back_to_family_scheme(self):
        """Old-schema reports (no ``name`` key) must not crash compare."""
        base = report("aaa", [("line/D", 100_000, 2.0)])
        for case in base["cases"]:
            del case["name"]
        cur = report("bbb", [("line/D", 50_000, 2.0)])
        text, regressions = compare_reports(base, cur, threshold_pct=10.0)
        assert regressions == ["line/D"]
        assert "REGRESSION" in text

    def test_structured_diff_payload(self):
        base = report("aaa", [("line/D", 100_000, 2.0), ("gone/D", 1.0, 2.0)])
        cur = report("bbb", [("line/D", 50_000, 2.0), ("new/D", 1.0, 2.0)])
        data = compare_reports_data(base, cur, threshold_pct=10.0)
        assert data["baseline_revision"] == "aaa"
        assert data["current_revision"] == "bbb"
        assert data["only_in_baseline"] == ["gone/D"]
        assert data["only_in_current"] == ["new/D"]
        assert data["regressions"] == ["line/D"]
        (row,) = data["cases"]
        assert row["name"] == "line/D"
        assert row["status"] == "regression"
        assert row["delta_pct"] == -50.0


class TestCompareCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_without_regression(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        a = self._write(tmp_path, "a.json", report("aaa", [("line/D", 100_000, 2.0)]))
        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 99_000, 2.0)]))
        assert main(["bench", "compare", a, b]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_four_on_regression(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        a = self._write(tmp_path, "a.json", report("aaa", [("line/D", 100_000, 2.0)]))
        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 50_000, 2.0)]))
        assert main(["bench", "compare", a, b, "--threshold", "10"]) == 4
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_is_configurable(self, tmp_path):
        from repro.experiments.__main__ import main

        a = self._write(tmp_path, "a.json", report("aaa", [("line/D", 100_000, 2.0)]))
        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 80_000, 2.0)]))
        assert main(["bench", "compare", a, b, "--threshold", "30"]) == 0
        assert main(["bench", "compare", a, b, "--threshold", "10"]) == 4

    def test_malformed_subcommand_rejected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["bench", "compare", "only-one.json"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_missing_report_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 1.0, 2.0)]))
        assert main(["bench", "compare", str(tmp_path / "nope.json"), b]) == 2
        assert "cannot read report" in capsys.readouterr().err

    def test_malformed_report_json_is_a_clean_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = self._write(tmp_path, "b.json", report("bbb", [("line/D", 1.0, 2.0)]))
        assert main(["bench", "compare", str(bad), good]) == 2
        assert "malformed report" in capsys.readouterr().err

    def test_json_output_for_ci(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        a = self._write(tmp_path, "a.json", report("aaa", [("line/D", 100_000, 2.0)]))
        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 50_000, 2.0)]))
        assert main(["bench", "compare", a, b, "--threshold", "10", "--json"]) == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == ["line/D"]
        assert payload["cases"][0]["status"] == "regression"

    def test_json_output_exit_zero_without_regression(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        a = self._write(tmp_path, "a.json", report("aaa", [("line/D", 100_000, 2.0)]))
        b = self._write(tmp_path, "b.json", report("bbb", [("line/D", 99_000, 2.0)]))
        assert main(["bench", "compare", a, b, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["regressions"] == []

    def test_load_report_reads_written_json(self, tmp_path):
        payload = report("aaa", [("line/D", 1.0, 2.0)])
        path = self._write(tmp_path, "a.json", payload)
        assert load_report(path) == payload
