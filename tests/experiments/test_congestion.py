"""The congestion experiment family and non-default-transport scenarios.

Covers the transport subsystem's scenario-level contract: a cubic
scenario is deterministic, parallel sweeps equal serial ones, results
round-trip through the cache byte-identically, the default transport
canonicalizes out of the digest, and the transport × MAC family grid is
wired the way its tables assume.
"""

from __future__ import annotations

import json

from repro.experiments.congestion import (
    CONGESTION_SCHEMES,
    CONGESTION_TRANSPORTS,
    congestion_grid,
    run_congestion,
)
from repro.experiments.parallel import ResultCache, SweepRunner, config_digest
from repro.experiments.runner import (
    DEFAULT_TRANSPORT_SPEC,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
)
from repro.spec import TransportSpec
from repro.topology.standard import line_topology


def cubic_config(**overrides):
    defaults = dict(
        topology=line_topology(3),
        scheme_label="R16",
        active_flows=[1],
        transport=TransportSpec("cubic"),
        duration_s=0.1,
        seed=2,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestCubicScenario:
    def test_runs_are_deterministic(self):
        first = run_scenario(cubic_config())
        second = run_scenario(cubic_config())
        assert first.to_dict() == second.to_dict()

    def test_parallel_equals_serial(self):
        configs = [cubic_config(seed=seed) for seed in (1, 2, 3)]
        serial = SweepRunner(jobs=1).run(configs)
        parallel = SweepRunner(jobs=2).run(configs)
        for a, b in zip(serial, parallel):
            assert a.to_dict() == b.to_dict()

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(cache=cache)
        config = cubic_config()
        first = runner.run_one(config)
        assert cache.misses == 1
        second = runner.run_one(config)
        assert cache.hits == 1
        assert second.to_dict() == first.to_dict()
        rebuilt = ScenarioResult.from_dict(json.loads(json.dumps(first.to_dict())))
        assert rebuilt.to_dict() == first.to_dict()

    def test_transport_counters_surface_in_results(self):
        result = run_scenario(cubic_config())
        flow = result.flows[0]
        data = flow.to_dict()
        for key in ("retransmissions", "fast_retransmits", "timeouts", "rto_backoffs"):
            assert key in data
        assert flow.packets_sent > 0  # the sender's segment count, not 0


class TestTransportDigest:
    def test_default_transport_canonicalizes_out(self):
        """No transport, explicit reno, and the default spec share a digest."""
        base = cubic_config(transport=None)
        explicit = cubic_config(transport=TransportSpec("reno"))
        assert "transport" not in base.to_dict()
        assert "transport" not in explicit.to_dict()
        assert config_digest(base) == config_digest(explicit)
        assert base.resolved_transport() == DEFAULT_TRANSPORT_SPEC

    def test_non_default_transport_changes_the_digest(self):
        assert config_digest(cubic_config()) != config_digest(cubic_config(transport=None))
        assert config_digest(
            cubic_config(transport=TransportSpec("cubic", {"beta": 0.6}))
        ) != config_digest(cubic_config())

    def test_transport_survives_serialization(self):
        config = cubic_config(transport=TransportSpec("cubic", {"beta": 0.6}))
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt.transport == config.transport
        assert config_digest(rebuilt) == config_digest(config)


class TestCongestionFamily:
    def test_grid_covers_transport_times_mac(self):
        configs, keys = congestion_grid(duration_s=0.05)
        assert len(configs) == len(CONGESTION_TRANSPORTS) * len(CONGESTION_SCHEMES)
        assert keys[0] == (CONGESTION_TRANSPORTS[0], CONGESTION_SCHEMES[0])
        seen = {
            (config.resolved_transport().name, config.scheme_label) for config in configs
        }
        assert seen == {(t, s) for t in CONGESTION_TRANSPORTS for s in CONGESTION_SCHEMES}

    def test_run_fills_every_cell(self):
        result = run_congestion(
            topology="line",
            transports=("reno", "cubic"),
            schemes=("D",),
            duration_s=0.05,
        )
        assert set(result.throughput_mbps) == {"reno", "cubic"}
        for transport in ("reno", "cubic"):
            assert set(result.throughput_mbps[transport]) == {"D"}
            assert result.throughput_mbps[transport]["D"] > 0
            assert result.retransmissions[transport]["D"] >= 0

    def test_listed_in_the_cli(self):
        from repro.experiments.__main__ import EXPERIMENTS

        assert "congestion" in EXPERIMENTS
