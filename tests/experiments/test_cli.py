"""The ``python -m repro.experiments`` CLI: list, run, and cache-only report."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestList:
    def test_list_includes_mobility_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mobility-tcp" in out and "mobility-voip" in out

    def test_registry_covers_paper_and_extras(self):
        for name in ("fig3", "table3", "mobility-tcp", "mobility-voip", "corpus"):
            assert name in EXPERIMENTS

    def test_list_groups_families_under_headings(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in ("paper figures:", "ablations:", "mobility:",
                        "components:", "corpus:"):
            assert heading in out
        # Headings appear in registration order; figures come first.
        assert out.index("paper figures:") < out.index("ablations:") < out.index("corpus:")

    def test_list_marks_cache_only_families_and_axes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        report_line = next(
            line for line in out.splitlines() if line.strip().startswith("corpus-report")
        )
        assert "[cache-only]" in report_line
        corpus_line = next(
            line for line in out.splitlines()
            if line.strip().startswith("corpus ") or line.strip().startswith("corpus  ")
        )
        assert "axes: topology x mac" in corpus_line
        # The simulating family is not marked cache-only.
        assert "[cache-only]" not in corpus_line

    def test_list_prints_registry_summaries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MAC scheme:" in out and "trace:<arg>" in out


class TestRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCorpusFamily:
    def test_run_corpus_returns_seeded_sample_rows(self):
        from repro.experiments.corpus import run_corpus

        result = run_corpus(seed=0, sample=2, duration_s=0.005)
        again = run_corpus(seed=0, sample=2, duration_s=0.005)
        assert len(result.labels) == 2
        assert result.labels == again.labels
        assert result.throughput_mbps == again.throughput_mbps
        for label in result.labels:
            assert label in result.throughput_mbps and label in result.events

    def test_corpus_report_refuses_to_simulate_without_cache(self, capsys):
        assert main(["run", "corpus-report", "--no-cache"]) == 3
        assert "never simulates" in capsys.readouterr().err

    def test_corpus_report_serves_a_populated_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import repro.experiments.corpus as corpus

        # run_corpus binds its defaults at def time; wrap it to shrink the
        # sample (the renderer re-imports the symbol on each call).
        full_run = corpus.run_corpus
        monkeypatch.setattr(
            corpus, "run_corpus", lambda **kwargs: full_run(**{**kwargs, "sample": 2})
        )
        monkeypatch.setattr(corpus, "CORPUS_DURATION_S", 0.005)
        assert main(["run", "corpus"]) == 0
        run_out = capsys.readouterr().out
        assert "Corpus" in run_out
        assert main(["run", "corpus-report"]) == 0
        report_out = capsys.readouterr().out
        assert "0 simulated" in report_out


class TestReport:
    def test_report_on_cold_cache_fails_without_simulating(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["report", "mobility-tcp", "--duration", "0.05"]) == 3
        err = capsys.readouterr().err
        assert "not in the result cache" in err
        assert "run mobility-tcp" in err
        # Nothing was simulated: the cache directory stayed empty.
        assert not any(tmp_path.rglob("*.json"))

    def test_report_renders_after_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Tiny grid: wrap the entry point so the CLI sweeps a single cell
        # (default arguments were bound at def time, so patching the
        # module-level constants would not shrink anything).
        import repro.experiments.mobility as mobility

        full_run = mobility.run_mobility_tcp
        monkeypatch.setattr(
            mobility,
            "run_mobility_tcp",
            lambda **kwargs: full_run(speeds=(0.0,), schemes=("D",), **kwargs),
        )
        assert main(["run", "mobility-tcp", "--duration", "0.05"]) == 0
        run_out = capsys.readouterr().out
        assert "Mobility — TCP" in run_out
        assert main(["report", "mobility-tcp", "--duration", "0.05"]) == 0
        report_out = capsys.readouterr().out
        assert "Mobility — TCP" in report_out
        assert "0 simulated" in report_out
