"""The ``python -m repro.experiments`` CLI: list, run, and cache-only report."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestList:
    def test_list_includes_mobility_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mobility-tcp" in out and "mobility-voip" in out

    def test_registry_covers_paper_and_extras(self):
        for name in ("fig3", "table3", "mobility-tcp", "mobility-voip"):
            assert name in EXPERIMENTS


class TestRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReport:
    def test_report_on_cold_cache_fails_without_simulating(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["report", "mobility-tcp", "--duration", "0.05"]) == 3
        err = capsys.readouterr().err
        assert "not in the result cache" in err
        assert "run mobility-tcp" in err
        # Nothing was simulated: the cache directory stayed empty.
        assert not any(tmp_path.rglob("*.json"))

    def test_report_renders_after_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Tiny grid: wrap the entry point so the CLI sweeps a single cell
        # (default arguments were bound at def time, so patching the
        # module-level constants would not shrink anything).
        import repro.experiments.mobility as mobility

        full_run = mobility.run_mobility_tcp
        monkeypatch.setattr(
            mobility,
            "run_mobility_tcp",
            lambda **kwargs: full_run(speeds=(0.0,), schemes=("D",), **kwargs),
        )
        assert main(["run", "mobility-tcp", "--duration", "0.05"]) == 0
        run_out = capsys.readouterr().out
        assert "Mobility — TCP" in run_out
        assert main(["report", "mobility-tcp", "--duration", "0.05"]) == 0
        report_out = capsys.readouterr().out
        assert "Mobility — TCP" in report_out
        assert "0 simulated" in report_out
