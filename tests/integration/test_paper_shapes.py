"""End-to-end integration tests: the qualitative claims of the paper's evaluation.

These runs use short simulated durations (0.2-0.5 s instead of the paper's
10 s) so the suite stays fast; the asserted properties are the *orderings*
the paper reports, which are stable well before 10 s.
"""

import pytest

from repro.experiments.collisions import run_hidden_collisions, run_regular_collisions
from repro.experiments.hops import run_hops
from repro.experiments.longlived import run_longlived_panel
from repro.experiments.motivation import run_motivation
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.experiments.voip import run_voip
from repro.experiments.web import run_web_traffic
from repro.topology.standard import fig1_topology


class TestMotivationSectionII:
    """Section II: opportunistic per-packet schemes hurt TCP."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_motivation(duration_s=0.4, seed=1)

    def test_predetermined_beats_preexor_and_mcexor(self, results):
        assert results["SPR"].throughput_mbps > results["preExOR"].throughput_mbps
        assert results["SPR"].throughput_mbps > results["MCExOR"].throughput_mbps

    def test_opportunistic_schemes_reorder_significantly(self, results):
        assert results["preExOR"].reordering_ratio > 0.05
        assert results["MCExOR"].reordering_ratio > 0.05

    def test_predetermined_barely_reorders(self, results):
        assert results["SPR"].reordering_ratio < 0.03

    def test_all_schemes_make_progress(self, results):
        for outcome in results.values():
            assert outcome.throughput_mbps > 0.5


class TestFig3LongLivedTcp:
    """Fig. 3(a): ROUTE0, clear channel."""

    @pytest.fixture(scope="class")
    def panel(self):
        # 0.5 s is long enough for TCP to leave slow start and for AFR/RIPPLE
        # to build the queue backlog their aggregation depends on.
        return run_longlived_panel("ROUTE0", 1e-6, duration_s=0.5, seed=1)

    def test_direct_spr_is_worst(self, panel):
        for n_flows in (1, 2):
            assert panel.throughput_mbps["S"][n_flows] < panel.throughput_mbps["D"][n_flows]

    def test_ripple_wins_over_every_other_scheme(self, panel):
        for n_flows in (1, 2, 3):
            best_other = max(
                panel.throughput_mbps[label][n_flows] for label in ("S", "D", "R1", "A")
            )
            assert panel.throughput_mbps["R16"][n_flows] > best_other

    def test_ripple_gain_is_at_least_the_paper_range(self, panel):
        # The paper reports 100 %-300 % gains over the other approaches.
        gain = panel.throughput_mbps["R16"][1] / panel.throughput_mbps["D"][1]
        assert gain >= 2.0

    def test_aggregation_beats_plain_dcf(self, panel):
        assert panel.throughput_mbps["A"][1] > panel.throughput_mbps["D"][1]

    def test_pure_mtxop_is_at_least_comparable_to_dcf(self, panel):
        # Fig. 3(a): R1 achieves slightly higher throughput than DCF.
        assert panel.throughput_mbps["R1"][1] > 0.9 * panel.throughput_mbps["D"][1]


class TestFig4NoisyChannel:
    def test_ripple_still_wins_at_ber_1e5(self):
        panel = run_longlived_panel(
            "ROUTE0", 1e-5, scheme_labels=("D", "A", "R16"), flow_sets=((1,),),
            duration_s=0.3, seed=1,
        )
        assert panel.throughput_mbps["R16"][1] > panel.throughput_mbps["A"][1]
        assert panel.throughput_mbps["R16"][1] > panel.throughput_mbps["D"][1]


class TestRouteSensitivity:
    def test_route2_is_worse_than_route0_for_ripple(self):
        # Fig. 3: "a significantly lower throughput is achieved on ROUTE2".
        r0 = run_longlived_panel("ROUTE0", 1e-6, scheme_labels=("R16",), flow_sets=((1,),),
                                 duration_s=0.3, seed=1)
        r2 = run_longlived_panel("ROUTE2", 1e-6, scheme_labels=("R16",), flow_sets=((1,),),
                                 duration_s=0.3, seed=1)
        assert r2.throughput_mbps["R16"][1] < r0.throughput_mbps["R16"][1]


class TestCollisions:
    def test_regular_collisions_ripple_on_top(self):
        result = run_regular_collisions(flow_counts=(1, 3), duration_s=0.25, seed=1)
        for n in (1, 3):
            assert result.throughput_mbps["R16"][n] > result.throughput_mbps["D"][n]

    def test_hidden_traffic_throttles_flow1(self):
        result = run_hidden_collisions(hidden_counts=(0, 6), duration_s=0.3, seed=1)
        for label in ("D", "R16"):
            assert result.throughput_mbps[label][6] < result.throughput_mbps[label][0]


class TestHops:
    def test_throughput_drops_with_distance_and_ripple_leads(self):
        result = run_hops(hop_counts=(2, 5), duration_s=0.3, seed=1)
        for label in ("D", "R16"):
            assert result.throughput_mbps[label][5] < result.throughput_mbps[label][2]
        assert result.throughput_mbps["R16"][2] > result.throughput_mbps["D"][2]
        assert result.throughput_mbps["R16"][5] > result.throughput_mbps["D"][5]


class TestWebAndVoip:
    def test_web_traffic_ripple_wins(self):
        result = run_web_traffic(duration_s=0.5, seed=1)
        assert result.total_mbps["R16"] > result.total_mbps["D"]

    def test_voip_mos_ordering(self):
        result = run_voip(bit_error_rate=1e-6, flow_groups=(10,), duration_s=1.0, seed=1)
        assert result.mos["R16"][10] >= result.mos["D"][10]
        for label in ("D", "A", "R16"):
            assert 1.0 <= result.mos[label][10] <= 4.5


class TestRippleOrderingEndToEnd:
    def test_no_mac_level_reordering_under_ripple(self):
        config = ScenarioConfig(
            topology=fig1_topology(), scheme_label="R16", active_flows=[1, 2, 3],
            duration_s=0.3, seed=3,
        )
        result = run_scenario(config)
        # Any late arrivals are TCP loss retransmissions; with three competing
        # flows the ratio must stay far below the 26-28 % of preExOR/MCExOR.
        assert result.reordering_ratio < 0.05
