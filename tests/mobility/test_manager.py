"""MobilityManager: tick scheduling, static short-circuit, re-estimation wiring."""

import pytest

from repro.mobility.manager import MobilityManager
from repro.mobility.models import RandomWaypoint, StaticMobility, TraceMobility
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import seconds


def make_manager(model, sim=None, mobile_nodes=None, interval_s=0.1):
    sim = sim or Simulator()
    moves = []
    manager = MobilityManager(
        sim,
        model,
        RandomStreams(seed=4).stream("mobility"),
        update_interval_ns=seconds(interval_s),
        move_node=lambda node_id, pos: moves.append((node_id, pos)),
        mobile_nodes=mobile_nodes,
    )
    return sim, manager, moves


class TestStaticShortCircuit:
    def test_static_model_schedules_nothing(self):
        sim, manager, moves = make_manager(StaticMobility())
        manager.start({0: (0.0, 0.0), 1: (10.0, 0.0)})
        assert sim.pending_events == 0
        sim.run(until=seconds(1.0))
        assert sim.processed_events == 0
        assert moves == []
        assert not manager.active

    def test_zero_speed_waypoint_schedules_nothing(self):
        sim, manager, moves = make_manager(RandomWaypoint(0.0, 0.0))
        manager.start({0: (0.0, 0.0)})
        assert sim.pending_events == 0


class TestTicking:
    def test_tick_cadence(self):
        sim, manager, moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert manager.updates == 10
        assert moves, "a 5 m/s node should have moved"

    def test_mobile_nodes_filter(self):
        sim, manager, moves = make_manager(
            TraceMobility(
                {
                    0: [(0.0, 0.0, 0.0), (1.0, 50.0, 0.0)],
                    1: [(0.0, 10.0, 0.0), (1.0, 60.0, 0.0)],
                }
            ),
            mobile_nodes=[1],
            interval_s=0.25,
        )
        manager.start({0: (0.0, 0.0), 1: (10.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert {node_id for node_id, _ in moves} == {1}

    def test_stop_cancels_pending_ticks(self):
        sim, manager, moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(0.35))
        ticks_at_stop = manager.updates
        manager.stop()
        assert not manager.active
        sim.run(until=seconds(2.0))
        assert manager.updates == ticks_at_stop

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.0)


class TestReestimation:
    def test_reestimation_fires_on_its_own_cadence(self):
        sim, manager, _moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        calls = []
        manager.add_reestimation(seconds(0.5), lambda: calls.append(sim.now))
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert calls == [seconds(0.5), seconds(1.0)]
        assert manager.reestimations == 2

    def test_stop_from_inside_a_reestimation_callback(self):
        # "Freeze the topology once routes converge" must stop cleanly, not
        # crash when the fired event tries to re-arm itself.
        sim, manager, _moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        manager.add_reestimation(seconds(0.3), manager.stop)
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert manager.reestimations == 1
        assert manager.updates == 2  # ticks at 0.1 and 0.2; stopped at 0.3
        assert not manager.active

    def test_no_reestimation_without_callbacks(self):
        sim, manager, _moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert manager.reestimations == 0

    def test_reestimation_sees_positions_at_its_own_timestamp(self):
        # A re-estimation coinciding with a position tick fires first (lower
        # event seq) but must not observe one-interval-stale geometry: the
        # shared advance brings every node to the callback's timestamp.
        model = TraceMobility({0: [(0.0, 0.0, 0.0), (1.0, 100.0, 0.0)]})
        sim, manager, _moves = make_manager(model, interval_s=0.1)
        observed = []
        manager.add_reestimation(
            seconds(0.5), lambda: observed.append(model.position(0))
        )
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert observed[0] == pytest.approx((50.0, 0.0))  # not the t=0.4 (40, 0)
        assert observed[1] == pytest.approx((100.0, 0.0))

    def test_multiple_reestimations_keep_their_own_cadence(self):
        sim, manager, _moves = make_manager(RandomWaypoint(1.0, 5.0), interval_s=0.1)
        fast, slow = [], []
        manager.add_reestimation(seconds(0.2), lambda: fast.append(sim.now))
        manager.add_reestimation(seconds(0.5), lambda: slow.append(sim.now))
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(1.0))
        assert len(fast) == 5
        assert slow == [seconds(0.5), seconds(1.0)]

    def test_reestimation_not_scheduled_for_static_model(self):
        sim, manager, _moves = make_manager(StaticMobility())
        calls = []
        manager.add_reestimation(seconds(0.5), lambda: calls.append(sim.now))
        manager.start({0: (0.0, 0.0)})
        sim.run(until=seconds(2.0))
        assert calls == []
