"""End-to-end mobility scenarios: static parity, cache/parallel parity, re-routing."""

import json

import pytest

from repro.experiments.parallel import ResultCache, SweepRunner
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.mobility import MobilitySpec
from repro.phy.error_models import BitErrorModel
from repro.routing.dynamic import AdaptiveEtxRouting
from repro.routing.static import StaticRouting
from repro.topology.network import WirelessNetwork
from repro.topology.standard import fig1_topology


def fig1_config(mobility=None, **overrides):
    defaults = dict(
        topology=fig1_topology(),
        scheme_label="R16",
        active_flows=[1],
        duration_s=0.05,
        seed=2,
        mobility=mobility,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def sim_outcome(result):
    """Result dict minus the config (configs legitimately differ by the mobility field)."""
    data = result.to_dict()
    data.pop("config")
    return data


class TestStaticParity:
    """speed=0 must cost nothing: same events, same bytes, same everything."""

    @pytest.mark.parametrize("scheme", ["D", "A", "R16", "preExOR"])
    def test_static_spec_is_bit_identical_to_no_mobility(self, scheme):
        baseline = run_scenario(fig1_config(scheme_label=scheme))
        static = run_scenario(fig1_config(MobilitySpec(), scheme_label=scheme))
        assert sim_outcome(static) == sim_outcome(baseline)

    def test_zero_speed_waypoint_is_bit_identical_to_no_mobility(self):
        baseline = run_scenario(fig1_config())
        zero = run_scenario(fig1_config(MobilitySpec.random_waypoint(0.0)))
        assert sim_outcome(zero) == sim_outcome(baseline)

    def test_live_mobility_changes_the_simulation(self):
        baseline = run_scenario(fig1_config())
        mobile = run_scenario(fig1_config(MobilitySpec.random_waypoint(10.0)))
        assert mobile.events_processed != baseline.events_processed


class TestDeterminismAndParity:
    def test_mobile_scenario_is_deterministic(self):
        config = fig1_config(MobilitySpec.random_waypoint(10.0))
        assert run_scenario(config).to_dict() == run_scenario(config).to_dict()

    def test_parallel_equals_serial_with_mobility(self):
        configs = [
            fig1_config(MobilitySpec.random_waypoint(speed), seed=seed)
            for speed in (0.0, 5.0)
            for seed in (1, 2)
        ]
        serial = SweepRunner(jobs=1).run(configs)
        parallel = SweepRunner(jobs=4).run(configs)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_cached_mobile_result_equals_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = fig1_config(MobilitySpec.gauss_markov(5.0))
        fresh = SweepRunner(cache=cache).run_one(config)
        assert cache.misses == 1
        cached = SweepRunner(cache=cache).run_one(config)
        assert cache.hits == 1
        assert cached.to_dict() == fresh.to_dict()
        # The cached payload survives a JSON round-trip of the mobility field.
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt.mobility.to_dict() == config.mobility.to_dict()


class TestMidRunRerouting:
    """A moving relay must change the routes/forwarder lists packets see."""

    def build_network(self):
        # 0 -- 1 -- 3 line with node 2 parked far away as the alternative relay.
        net = WirelessNetwork(error_model=BitErrorModel(1e-6), seed=3)
        net.add_node(0, (0.0, 0.0))
        net.add_node(1, (115.0, 10.0))
        net.add_node(2, (115.0, -300.0))
        net.add_node(3, (230.0, 0.0))
        static = StaticRouting({(0, 3): [0, 1, 3]})
        routing = AdaptiveEtxRouting(net.connectivity_graph(), fallback=static)
        return net, routing

    def swap_relays_spec(self):
        # Node 1 wanders out of range while node 2 moves into the relay slot.
        return MobilitySpec.trace(
            {
                1: [(0.0, 115.0, 10.0), (0.5, 115.0, 800.0)],
                2: [(0.0, 115.0, -300.0), (0.5, 115.0, -5.0)],
            },
            update_interval_s=0.05,
            reestimate_interval_s=0.1,
        )

    def test_opportunistic_scheme_reroutes_after_reestimation(self):
        net, routing = self.build_network()
        net.install_stack("ripple", routing)  # R16: opportunistic forwarder lists
        net.install_transport()
        path_before = routing.path(0, 3)
        forwarders_before = routing.forwarder_list(0, 3)
        net.install_mobility(self.swap_relays_spec())
        net.run_seconds(1.0)
        path_after = routing.path(0, 3)
        forwarders_after = routing.forwarder_list(0, 3)
        assert path_before == [0, 1, 3] and forwarders_before == (1,)
        assert path_after == [0, 2, 3] and forwarders_after == (2,)
        assert routing.updates > 0
        assert net.mobility.reestimations > 0

    def test_direct_position_assignment_invalidates_distance_cache(self):
        net, routing = self.build_network()
        a, b = net.node(0).radio, net.node(1).radio
        before = net.channel.distance(a, b)
        b.position = (500.0, 0.0)  # public attribute, not move_to
        assert net.channel.distance(a, b) != before

    def test_radio_positions_track_node_moves(self):
        net, routing = self.build_network()
        net.install_stack("dcf", routing)
        net.install_transport()
        net.install_mobility(self.swap_relays_spec())
        distance_before = net.channel.distance(net.node(0).radio, net.node(1).radio)
        net.run_seconds(1.0)
        # Node objects and radios moved together, and the distance cache noticed.
        assert net.node(1).position[1] == pytest.approx(800.0)
        assert net.node(1).radio.position == net.node(1).position
        distance_after = net.channel.distance(net.node(0).radio, net.node(1).radio)
        assert distance_after > distance_before

    def test_scenario_runner_picks_up_adaptive_routing(self):
        # Through run_scenario: a live spec swaps in AdaptiveEtxRouting and the
        # run completes, re-estimating along the way.
        from repro.experiments.runner import build_network

        config = fig1_config(
            MobilitySpec.random_waypoint(
                10.0, update_interval_s=0.02, reestimate_interval_s=0.05
            ),
            duration_s=0.2,
        )
        network, routing = build_network(config)
        assert isinstance(routing, AdaptiveEtxRouting)
        network.run_seconds(config.duration_s)
        assert network.mobility is not None
        assert network.mobility.reestimations > 0
