"""Mobility models: determinism, bounds, static degeneration, trace playback."""

import math

import pytest

from repro.mobility.models import (
    GaussMarkov,
    RandomWaypoint,
    StaticMobility,
    TraceMobility,
    bounds_from_positions,
)
from repro.sim.rng import RandomStreams

POSITIONS = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (50.0, 80.0)}
BOUNDS = (-50.0, -50.0, 150.0, 150.0)


def trajectory(model, seed=5, steps=40, dt=0.1):
    """Advance every node ``steps`` times; returns {node: [positions...]}."""
    rng = RandomStreams(seed=seed).stream("mobility")
    model.setup(POSITIONS, rng)
    out = {node_id: [] for node_id in POSITIONS}
    for step in range(1, steps + 1):
        for node_id in sorted(POSITIONS):
            out[node_id].append(model.advance(node_id, step * dt, dt, rng))
    return out


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomWaypoint(1.0, 5.0, pause_s=0.2, bounds=BOUNDS),
            lambda: GaussMarkov(3.0, bounds=BOUNDS),
        ],
        ids=["random_waypoint", "gauss_markov"],
    )
    def test_same_seed_same_trajectory(self, factory):
        assert trajectory(factory(), seed=5) == trajectory(factory(), seed=5)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomWaypoint(1.0, 5.0, bounds=BOUNDS),
            lambda: GaussMarkov(3.0, bounds=BOUNDS),
        ],
        ids=["random_waypoint", "gauss_markov"],
    )
    def test_different_seed_different_trajectory(self, factory):
        assert trajectory(factory(), seed=5) != trajectory(factory(), seed=6)


class TestStaticDegeneration:
    def test_static_model_never_moves(self):
        model = StaticMobility()
        assert model.is_static
        traj = trajectory(model)
        for node_id, steps in traj.items():
            assert all(step == POSITIONS[node_id] for step in steps)

    def test_zero_speed_random_waypoint_is_static(self):
        model = RandomWaypoint(0.0, 0.0)
        assert model.is_static
        traj = trajectory(model)
        for node_id, steps in traj.items():
            assert all(step == POSITIONS[node_id] for step in steps)

    def test_zero_speed_gauss_markov_is_static(self):
        assert GaussMarkov(mean_speed_mps=0.0, speed_std_mps=0.0).is_static
        assert not GaussMarkov(mean_speed_mps=0.0, speed_std_mps=1.0).is_static

    def test_only_traceless_player_is_static(self):
        # A constant trace still pins its node to the traced position, which
        # may differ from the topology placement — it must keep ticking.
        assert TraceMobility({}).is_static
        assert not TraceMobility({0: [(0.0, 5.0, 5.0), (1.0, 5.0, 5.0)]}).is_static
        assert not TraceMobility({0: [(0.0, 5.0, 5.0), (1.0, 6.0, 5.0)]}).is_static

    def test_constant_trace_moves_node_to_traced_position(self):
        model = TraceMobility({0: [(0.0, 50.0, 50.0)]})
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (0.0, 0.0)}, rng)
        assert model.advance(0, 0.1, 0.1, rng) == (50.0, 50.0)


class TestRandomWaypoint:
    def test_positions_stay_in_bounds(self):
        traj = trajectory(RandomWaypoint(1.0, 10.0, bounds=BOUNDS), steps=200)
        min_x, min_y, max_x, max_y = BOUNDS
        for steps in traj.values():
            for x, y in steps:
                assert min_x - 1e-9 <= x <= max_x + 1e-9
                assert min_y - 1e-9 <= y <= max_y + 1e-9

    def test_step_length_bounded_by_max_speed(self):
        dt = 0.1
        model = RandomWaypoint(1.0, 5.0, bounds=BOUNDS)
        rng = RandomStreams(seed=9).stream("mobility")
        model.setup(POSITIONS, rng)
        x, y = model.position(0)
        for step in range(1, 100):
            nx_, ny_ = model.advance(0, step * dt, dt, rng)
            assert math.hypot(nx_ - x, ny_ - y) <= 5.0 * dt + 1e-9
            x, y = nx_, ny_

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(5.0, 1.0)  # min > max
        with pytest.raises(ValueError):
            RandomWaypoint(-1.0, 1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(0.0, 1.0, pause_s=-2.0)

    def test_bounds_default_to_padded_bbox(self):
        model = RandomWaypoint(1.0, 2.0)
        model.setup(POSITIONS, RandomStreams(seed=1).stream("mobility"))
        assert model.bounds == bounds_from_positions(POSITIONS)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="min <= max"):
            RandomWaypoint(1.0, 2.0, bounds=(10.0, 0.0, 0.0, 10.0))

    def test_degenerate_zero_area_bounds_terminate(self):
        # Every waypoint lands on the node itself; a zero-length leg must
        # consume time instead of spinning the advance loop forever.
        model = RandomWaypoint(1.0, 1.0, pause_s=0.0, bounds=(5.0, 5.0, 5.0, 5.0))
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (5.0, 5.0)}, rng)
        for step in range(1, 6):
            assert model.advance(0, step * 0.1, 0.1, rng) == (5.0, 5.0)


class TestGaussMarkov:
    def test_positions_stay_in_bounds(self):
        traj = trajectory(GaussMarkov(8.0, bounds=BOUNDS), steps=300)
        min_x, min_y, max_x, max_y = BOUNDS
        for steps in traj.values():
            for x, y in steps:
                assert min_x - 1e-9 <= x <= max_x + 1e-9
                assert min_y - 1e-9 <= y <= max_y + 1e-9

    def test_alpha_one_keeps_speed_constant(self):
        # alpha=1 is full memory: speed never changes from its mean start value.
        dt = 0.5
        model = GaussMarkov(4.0, alpha=1.0, bounds=(-1e6, -1e6, 1e6, 1e6))
        rng = RandomStreams(seed=3).stream("mobility")
        model.setup(POSITIONS, rng)
        x, y = model.position(1)
        for step in range(1, 20):
            nx_, ny_ = model.advance(1, step * dt, dt, rng)
            assert math.hypot(nx_ - x, ny_ - y) == pytest.approx(4.0 * dt)
            x, y = nx_, ny_

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GaussMarkov(1.0, alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkov(-1.0)

    def test_wall_steering_crosses_the_angle_seam(self):
        # Heading just below 2*pi, steer target ~0: the blend must nudge
        # across the 0/2-pi seam (short way), not swing ~40 degrees the
        # long way round as a raw-radian average would.
        model = GaussMarkov(
            2.0, alpha=0.9, speed_std_mps=0.0, heading_std_rad=0.0,
            bounds=(0.0, 0.0, 100.0, 100.0),
        )
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (5.0, 50.0)}, rng)  # inside the left wall margin
        model._heading[0] = 2.0 * math.pi - 0.05
        model.advance(0, 0.1, 0.1, rng)
        # steer target is atan2(0, 45) = 0; wrapped difference is +0.05, so
        # the heading moves by (1 - alpha) * 0.05 towards it.
        change = math.remainder(model._heading[0] - (2.0 * math.pi - 0.05), 2.0 * math.pi)
        assert change == pytest.approx(0.1 * 0.05)


class TestTraceMobility:
    def test_piecewise_linear_interpolation(self):
        model = TraceMobility({0: [(0.0, 0.0, 0.0), (1.0, 10.0, 20.0)]})
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (0.0, 0.0)}, rng)
        assert model.advance(0, 0.5, 0.5, rng) == pytest.approx((5.0, 10.0))
        assert model.advance(0, 1.0, 0.5, rng) == pytest.approx((10.0, 20.0))

    def test_clamped_before_and_after_trace(self):
        model = TraceMobility({0: [(1.0, 3.0, 4.0), (2.0, 30.0, 40.0)]})
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (0.0, 0.0)}, rng)
        assert model.advance(0, 0.5, 0.5, rng) == (3.0, 4.0)   # before first sample
        assert model.advance(0, 9.0, 0.5, rng) == (30.0, 40.0)  # after last sample

    def test_node_without_trace_stays_put(self):
        model = TraceMobility({0: [(0.0, 0.0, 0.0), (1.0, 10.0, 0.0)]})
        rng = RandomStreams(seed=1).stream("mobility")
        model.setup({0: (0.0, 0.0), 1: (7.0, 7.0)}, rng)
        assert model.advance(1, 0.5, 0.5, rng) == (7.0, 7.0)

    def test_malformed_traces_rejected(self):
        with pytest.raises(ValueError, match="not time-sorted"):
            TraceMobility({0: [(1.0, 0.0, 0.0), (0.5, 1.0, 1.0)]})
        with pytest.raises(ValueError, match="empty"):
            TraceMobility({0: []})
