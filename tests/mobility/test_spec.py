"""MobilitySpec serialization, validation, and cache-key integration."""

import json

import pytest

from repro.experiments.parallel import config_digest
from repro.experiments.runner import ScenarioConfig
from repro.mobility.models import GaussMarkov, RandomWaypoint, StaticMobility, TraceMobility
from repro.mobility.spec import MobilitySpec
from repro.topology.standard import fig1_topology


def roundtrip(spec: MobilitySpec) -> MobilitySpec:
    return MobilitySpec.from_dict(json.loads(json.dumps(spec.to_dict())))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            MobilitySpec(),
            MobilitySpec.random_waypoint(5.0, pause_s=1.0, bounds=(0.0, 0.0, 100.0, 100.0)),
            MobilitySpec.random_waypoint(0.0),
            MobilitySpec.gauss_markov(2.0, alpha=0.9),
            MobilitySpec.trace({3: [(0.0, 1.0, 2.0), (1.0, 3.0, 4.0)]}),
            MobilitySpec.random_waypoint(3.0, mobile_nodes=[2, 0]),
        ],
        ids=["static", "rwp", "rwp-zero", "gauss_markov", "trace", "filtered"],
    )
    def test_to_dict_from_dict_lossless(self, spec):
        rebuilt = roundtrip(spec)
        assert rebuilt.to_dict() == spec.to_dict()
        # And the rebuilt spec builds an equivalent model.
        assert type(rebuilt.build_model()) is type(spec.build_model())
        assert rebuilt.is_static == spec.is_static

    def test_mobile_nodes_serialized_sorted(self):
        spec = MobilitySpec.random_waypoint(3.0, mobile_nodes=[5, 1, 3])
        assert spec.to_dict()["mobile_nodes"] == [1, 3, 5]


class TestValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            MobilitySpec(model="teleport")

    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError):
            MobilitySpec(update_interval_s=0.0)
        with pytest.raises(ValueError):
            MobilitySpec(reestimate_interval_s=-1.0)

    def test_static_with_parameters_rejected(self):
        with pytest.raises(ValueError, match="no parameters"):
            MobilitySpec(model="static", params={"speed": 3}).build_model()

    def test_empty_mobile_node_filter_is_static(self):
        # An explicit empty allow-list pins every node: physically identical
        # to a static run, so it must take the static (bit-identical) path.
        assert MobilitySpec.random_waypoint(5.0, mobile_nodes=[]).is_static
        assert not MobilitySpec.random_waypoint(5.0, mobile_nodes=[1]).is_static
        assert not MobilitySpec.random_waypoint(5.0, mobile_nodes=None).is_static

    def test_unknown_model_parameters_rejected(self):
        # A typo'd key must fail loudly, not silently fall back to defaults.
        with pytest.raises(ValueError, match="unknown random_waypoint"):
            MobilitySpec(model="random_waypoint", params={"speed_mps": 10.0}).build_model()
        with pytest.raises(ValueError, match="unknown gauss_markov"):
            MobilitySpec(model="gauss_markov", params={"alpah": 0.9}).build_model()

    def test_build_model_types(self):
        assert isinstance(MobilitySpec().build_model(), StaticMobility)
        assert isinstance(MobilitySpec.random_waypoint(1.0).build_model(), RandomWaypoint)
        assert isinstance(MobilitySpec.gauss_markov(1.0).build_model(), GaussMarkov)
        assert isinstance(
            MobilitySpec.trace({0: [(0.0, 0.0, 0.0)]}).build_model(), TraceMobility
        )


class TestScenarioConfigIntegration:
    def config(self, mobility=None):
        return ScenarioConfig(
            topology=fig1_topology(),
            scheme_label="R16",
            active_flows=[1],
            duration_s=0.05,
            seed=2,
            mobility=mobility,
        )

    def test_config_roundtrip_with_mobility(self):
        config = self.config(MobilitySpec.random_waypoint(5.0))
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt.to_dict() == config.to_dict()
        assert config_digest(rebuilt) == config_digest(config)

    def test_config_without_mobility_still_roundtrips(self):
        config = self.config()
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt.mobility is None
        assert rebuilt.to_dict() == config.to_dict()

    def test_digest_distinguishes_mobility(self):
        none = config_digest(self.config())
        static = config_digest(self.config(MobilitySpec()))
        slow = config_digest(self.config(MobilitySpec.random_waypoint(1.0)))
        fast = config_digest(self.config(MobilitySpec.random_waypoint(10.0)))
        assert len({none, static, slow, fast}) == 4

    def test_schema_version_invalidates_old_entries(self, monkeypatch):
        import repro.experiments.parallel as parallel

        config = self.config()
        current = config_digest(config)
        monkeypatch.setattr(parallel, "CACHE_SCHEMA_VERSION", 1)
        assert config_digest(config) != current
