"""Discrete-event engine: ordering, cancellation, run-until semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Event, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, fired.append, "c")
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(100, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(123, lambda: None)
        sim.run()
        assert sim.now == 123

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(10, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 50


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.processed_events == 0

    def test_other_events_survive_a_cancellation(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "keep")
        sim.schedule(10, fired.append, "drop").cancel()
        sim.run()
        assert fired == ["keep"]


class TestRunControl:
    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "at")
        sim.schedule(101, fired.append, "after")
        sim.run(until=100)
        assert fired == ["at"]
        assert sim.now == 100

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run(until=100)
        sim.run_for(50)
        assert sim.now == 150

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_processed_events_counts_only_fired(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None).cancel()
        sim.run()
        assert sim.processed_events == 1

    def test_max_events_leaves_clock_at_last_executed_event(self):
        # A truncated run must not jump the clock past still-pending events:
        # that would make the next run() raise "time went backwards".
        sim = Simulator()
        fired = []
        for t in (10, 20, 30):
            sim.schedule(t, fired.append, t)
        sim.run(until=100, max_events=1)
        assert fired == [10]
        assert sim.now == 10
        sim.run(until=100)
        assert fired == [10, 20, 30]
        assert sim.now == 100

    def test_max_events_advances_clock_when_rest_is_beyond_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 10)
        sim.schedule(500, fired.append, 500)
        sim.run(until=100, max_events=1)
        assert fired == [10]
        assert sim.now == 100  # the only pending event is after `until`

    def test_max_events_without_until_keeps_clock(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run(max_events=1)
        assert sim.now == 10

    @given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50))
    def test_events_never_fire_out_of_order(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestHeapCompaction:
    """Lazy cancellation must not grow the heap unboundedly."""

    def test_compaction_drops_cancelled_entries(self):
        sim = Simulator()
        events = [sim.schedule(100 + i, lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # The heap was rebuilt (at least once) when dead weight crossed half,
        # so cancelled entries can never dominate the heap.
        assert sim.pending_events < 200
        assert sim.cancelled_pending_events * 2 <= sim.pending_events
        sim.run()
        assert sim.processed_events == 50

    def test_small_heaps_are_left_alone(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None).cancel()
        sim.schedule(30, lambda: None).cancel()
        assert sim.pending_events == 3  # below the compaction threshold
        sim.run()
        assert sim.processed_events == 1
        assert keep.cancelled  # fired

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        fired = []
        survivors = []
        for i in range(200):
            event = sim.schedule(1000 - i, fired.append, 1000 - i)
            if i % 4 != 0:
                event.cancel()
            else:
                survivors.append(1000 - i)
        sim.run()
        assert fired == sorted(survivors)

    def test_cancel_after_fire_does_not_distort_accounting(self):
        sim = Simulator()
        handles = [sim.schedule(i, lambda: None) for i in range(5)]
        sim.run()
        for handle in handles:
            handle.cancel()  # stale handles: already fired
        assert sim.cancelled_pending_events == 0
        assert sim.pending_events == 0


class TestTupleSlotsRepresentation:
    """Heap entries are (time, seq, event) tuples around __slots__ Events."""

    def test_event_has_no_dict(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.arbitrary_new_attribute = 1

    def test_event_exposes_time_seq_and_active(self):
        sim = Simulator()
        first = sim.schedule(10, lambda: None)
        second = sim.schedule(10, lambda: None)
        assert (first.time, second.time) == (10, 10)
        assert first.seq < second.seq  # FIFO tie-break ordering key
        assert first.active and second.active
        first.cancel()
        assert not first.active and second.active

    def test_cancel_after_fire_is_a_noop(self):
        # step() marks a fired event cancelled to guard stale handles; a
        # later cancel() must neither call on_cancel bookkeeping twice nor
        # force a compaction of live entries.
        sim = Simulator()
        fired = []
        handle = sim.schedule(5, fired.append, "x")
        later = sim.schedule(10, fired.append, "y")
        sim.run(until=5)
        assert fired == ["x"]
        handle.cancel()
        assert sim.cancelled_pending_events == 0
        sim.run()
        assert fired == ["x", "y"]
        assert later.cancelled  # fired, not dropped

    def test_seq_ties_fifo_across_compaction(self):
        # Interleave many same-time events with cancellations so compaction
        # (triggered above COMPACT_MIN_HEAP) rebuilds the tuple heap, then
        # verify survivors still fire in scheduling order.
        sim = Simulator()
        fired = []
        survivors = []
        for i in range(300):
            event = sim.schedule(1000, fired.append, i)
            if i % 3 == 0:
                survivors.append(i)
            else:
                event.cancel()
        assert sim.pending_events < 300  # compaction ran at least once
        sim.run()
        assert fired == survivors

    def test_callback_cancelling_future_events_mid_run(self):
        # A callback that cancels enough events to trigger compaction while
        # run() holds its local heap alias must not lose pending events.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(100 + i, fired.append, f"doomed{i}") for i in range(100)]
        keeper = sim.schedule(500, fired.append, "keeper")

        def massacre():
            for event in doomed:
                event.cancel()

        sim.schedule(50, massacre)
        sim.run()
        assert fired == ["keeper"]
        assert keeper.cancelled  # fired
        assert sim.pending_events == 0

    def test_direct_event_construction_defaults(self):
        event = Event(5, 0, lambda: None)
        assert event.args == () and event.on_cancel is None
        event.cancel()  # no on_cancel hook: must not raise
        assert event.cancelled


class NoFreelistSimulator(Simulator):
    """Reference engine: every Event is a fresh allocation (no recycling)."""

    FREELIST_MAX = 0


class TestEventFreelist:
    """Event recycling: a recycled handle must be indistinguishable from new."""

    def test_fired_event_is_recycled_with_fresh_state(self):
        sim = Simulator()
        fired = []
        old = sim.schedule(10, fired.append, "old")
        sim.run()
        new = sim.schedule(10, fired.append, "new")
        assert new is old  # the pool actually recycled the object
        assert new.active and new.args == ("new",)
        sim.run()
        assert fired == ["old", "new"]

    def test_cancelled_then_recycled_event_never_fires_old_callback(self):
        sim = Simulator()
        fired = []
        old = sim.schedule(10, fired.append, "stale")
        old.cancel()
        sim.run()  # consumes the dead heap entry -> Event returns to the pool
        reused = sim.schedule(5, fired.append, "fresh")
        assert reused is old
        sim.run()
        assert fired == ["fresh"]

    def test_recycling_waits_for_the_heap_entry_not_the_cancel(self):
        # cancel() must NOT return the Event to the pool: its heap entry is
        # still queued, and recycling it early would let a new timer alias
        # the dead entry.  The object may only come back once run() (or
        # compaction) has consumed the entry.
        sim = Simulator()
        old = sim.schedule(10, lambda: None)
        old.cancel()
        fresh = sim.schedule(20, lambda: None)  # pool still empty here
        assert fresh is not old
        sim.run()
        recycled = sim.schedule(30, lambda: None)
        assert recycled is old or recycled is fresh

    def test_on_cancel_runs_exactly_once(self):
        calls = []
        event = Event(5, 0, lambda: None, on_cancel=lambda: calls.append(1))
        event.cancel()
        event.cancel()  # double-cancel is a no-op
        assert calls == [1]

    def test_simulator_cancel_accounting_once_per_event(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.cancelled_pending_events == 1

    def test_cancel_after_fire_does_not_disturb_accounting(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        handle.cancel()  # stale handle
        assert sim.cancelled_pending_events == 0

    def test_compaction_feeds_the_freelist(self):
        sim = Simulator()
        handles = [sim.schedule(100 + i, lambda: None) for i in range(200)]
        for handle in handles:
            handle.cancel()  # crossing the 50% threshold triggers _compact
        assert sim.pending_events < 200
        fresh = sim.schedule(5, lambda: None)
        assert fresh in handles  # compaction recycled the dropped Events

    def test_freelist_is_bounded(self):
        sim = Simulator()
        for i in range(Simulator.FREELIST_MAX + 500):
            sim.schedule(i, lambda: None)
        sim.run()
        assert len(sim._free) <= Simulator.FREELIST_MAX

    def test_no_freelist_subclass_always_allocates(self):
        sim = NoFreelistSimulator()
        old = sim.schedule(10, lambda: None)
        sim.run()
        assert sim.schedule(10, lambda: None) is not old


class TestSignalFastPath:
    """The four-tuple signal entries: fixed shape, no Event, never cancelled."""

    def test_schedule_signal_fires_with_payload(self):
        sim = Simulator()
        got = []
        sim.schedule_signal(50, got.append, "payload")
        sim.run()
        assert got == ["payload"]
        assert (sim.now, sim.processed_events) == (50, 1)

    def test_schedule_window_fires_open_then_close(self):
        sim = Simulator()
        log = []
        sim.schedule_window(10, 30, lambda p: log.append(("open", p, sim.now)),
                            lambda p: log.append(("close", p, sim.now)), "rx")
        sim.run()
        assert log == [("open", "rx", 10), ("close", "rx", 30)]

    def test_signal_entries_interleave_deterministically_with_events(self):
        # Same timestamp: scheduling order decides, regardless of entry shape.
        sim = Simulator()
        log = []
        sim.schedule(10, log.append, "event-first")
        sim.schedule_signal(10, log.append, "signal-second")
        sim.schedule(10, log.append, "event-third")
        sim.run()
        assert log == ["event-first", "signal-second", "event-third"]

    def test_window_entries_survive_compaction(self):
        sim = Simulator()
        log = []
        sim.schedule_window(500, 600, log.append, log.append, "kept")
        doomed = [sim.schedule(100 + i, lambda: None) for i in range(100)]
        for handle in doomed:
            handle.cancel()  # triggers compaction around the 4-tuples
        sim.run()
        assert log == ["kept", "kept"]


class TestFreelistDeterminism:
    """Recycling must not perturb the simulation: slab == no-freelist, bit for bit."""

    def test_full_scenario_identical_with_and_without_freelist(self, monkeypatch):
        import repro.topology.network as network
        from repro.experiments.runner import ScenarioConfig, run_scenario
        from repro.topology.standard import line_topology

        config = ScenarioConfig(topology=line_topology(4), duration_s=0.05, seed=3)
        slab = run_scenario(config).to_dict()
        monkeypatch.setattr(network, "Simulator", NoFreelistSimulator)
        reference = run_scenario(config).to_dict()
        assert slab == reference
