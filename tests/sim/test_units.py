"""Unit conversions: integer-nanosecond time arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import units


class TestConversions:
    def test_microseconds(self):
        assert units.us(1) == 1_000
        assert units.us(16) == 16_000
        assert units.us(0.5) == 500

    def test_milliseconds(self):
        assert units.ms(1) == 1_000_000
        assert units.ms(0.2) == 200_000

    def test_seconds(self):
        assert units.seconds(1) == 1_000_000_000
        assert units.seconds(10) == 10 * units.SECOND

    def test_round_trip_seconds(self):
        assert units.ns_to_seconds(units.seconds(2.5)) == pytest.approx(2.5)

    def test_round_trip_microseconds(self):
        assert units.ns_to_us(units.us(37.5)) == pytest.approx(37.5)

    def test_rounding(self):
        # 0.0004 us = 0.4 ns rounds to 0; 0.6 ns rounds to 1.
        assert units.us(0.0004) == 0
        assert units.us(0.0006) == 1


class TestTransmissionTime:
    def test_exact_division(self):
        # 216 bits at 216 Mb/s is exactly one microsecond.
        assert units.transmission_time_ns(216, 216e6) == 1_000

    def test_rounds_up(self):
        # 1000 bytes at 216 Mb/s = 37.037... us, must round *up*.
        airtime = units.transmission_time_ns(8000, 216e6)
        assert airtime == 37_038

    def test_table1_packet_at_basic_rate(self):
        # 1000 bytes at 54 Mb/s ~ 148.1 us.
        airtime = units.transmission_time_ns(8000, 54e6)
        assert 148_000 < airtime < 148_200

    def test_zero_bits(self):
        assert units.transmission_time_ns(0, 54e6) == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, 0)

    @given(bits=st.integers(min_value=0, max_value=10**7), rate=st.sampled_from([6e6, 54e6, 216e6]))
    def test_airtime_never_shorter_than_exact(self, bits, rate):
        airtime = units.transmission_time_ns(bits, rate)
        assert airtime >= bits / rate * 1e9 - 1e-6

    @given(bits=st.integers(min_value=1, max_value=10**6))
    def test_airtime_monotone_in_bits(self, bits):
        assert units.transmission_time_ns(bits + 1, 54e6) >= units.transmission_time_ns(bits, 54e6)
