"""Named random streams: determinism and independence."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=42).stream("backoff")
        b = RandomStreams(seed=42).stream("backoff")
        assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("backoff")
        b = RandomStreams(seed=2).stream("backoff")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_named_streams_are_independent_of_request_order(self):
        first = RandomStreams(seed=7)
        x1 = first.stream("alpha").random()
        second = RandomStreams(seed=7)
        second.stream("beta")  # request another stream first
        x2 = second.stream("alpha").random()
        assert x1 == x2

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(seed=3)
        a = streams.stream("shadowing").random(5)
        b = streams.stream("biterror").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_changes_seed(self):
        base = RandomStreams(seed=10)
        fork = base.fork(5)
        assert fork.seed == 15
        assert base.stream("a").random() != fork.stream("a").random()
