"""Named random streams: determinism and independence."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=42).stream("backoff")
        b = RandomStreams(seed=42).stream("backoff")
        assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("backoff")
        b = RandomStreams(seed=2).stream("backoff")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_named_streams_are_independent_of_request_order(self):
        first = RandomStreams(seed=7)
        x1 = first.stream("alpha").random()
        second = RandomStreams(seed=7)
        second.stream("beta")  # request another stream first
        x2 = second.stream("alpha").random()
        assert x1 == x2

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(seed=3)
        a = streams.stream("shadowing").random(5)
        b = streams.stream("biterror").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_changes_seed(self):
        base = RandomStreams(seed=10)
        fork = base.fork(5)
        assert fork.seed == 15
        assert base.stream("a").random() != fork.stream("a").random()


class TestKeyedStreams:
    """stream_for: per-key substreams independent of everything but (seed, name, keys)."""

    def test_same_seed_same_keys_same_draws(self):
        a = RandomStreams(seed=11).stream_for("shadowing", 3, 7)
        b = RandomStreams(seed=11).stream_for("shadowing", 3, 7)
        assert list(a.random(10)) == list(b.random(10))

    def test_different_keys_are_independent(self):
        streams = RandomStreams(seed=11)
        ab = streams.stream_for("shadowing", 0, 1).random(8)
        ba = streams.stream_for("shadowing", 1, 0).random(8)
        other = streams.stream_for("shadowing", 0, 2).random(8)
        assert list(ab) != list(ba)
        assert list(ab) != list(other)

    def test_draws_do_not_depend_on_which_other_links_draw(self):
        # The culling guarantee: skipping some links entirely must not move
        # any other link's sample path.
        full = RandomStreams(seed=5)
        for sender in range(4):
            for receiver in range(4):
                if sender != receiver:
                    full.stream_for("shadowing", sender, receiver).random(3)
        probe_full = full.stream_for("shadowing", 2, 3).random(5)

        culled = RandomStreams(seed=5)
        probe_culled = culled.stream_for("shadowing", 2, 3)
        probe_culled.random(3)  # only this link ever draws
        assert list(probe_culled.random(5)) == list(probe_full)

    def test_keyed_stream_is_cached_and_stateful(self):
        streams = RandomStreams(seed=2)
        first = streams.stream_for("biterror", 1, 2)
        assert streams.stream_for("biterror", 1, 2) is first
        x = first.random()
        # A fresh registry reproduces the concatenated sample path.
        replay = RandomStreams(seed=2).stream_for("biterror", 1, 2)
        assert replay.random() == x

    def test_no_keys_is_the_plain_named_stream(self):
        streams = RandomStreams(seed=9)
        assert streams.stream_for("mobility") is streams.stream("mobility")

    def test_keyed_and_named_streams_do_not_collide(self):
        streams = RandomStreams(seed=4)
        named = streams.stream("mac").random(6)
        keyed = RandomStreams(seed=4).stream_for("mac", 0).random(6)
        assert list(named) != list(keyed)

    def test_keys_are_order_sensitive(self):
        streams = RandomStreams(seed=8)
        assert list(streams.stream_for("s", 1, 2).random(4)) != list(
            streams.stream_for("s", 2, 1).random(4)
        )


class TestPhiloxBatching:
    """Counter-based streams: batching is a pure optimisation, never a reseed.

    The channel batches fade draws (``standard_normal(n)``) and bit-error
    draws (``random(n)``) per sender; these tests pin the numpy contract
    the batching relies on — a vectorised draw consumes the Philox counter
    stream exactly like n scalar draws — plus the keying properties that
    make per-link batches independent of each other.
    """

    def test_streams_are_counter_based_philox(self):
        stream = RandomStreams(seed=1).stream("shadowing")
        assert type(stream.bit_generator).__name__ == "Philox"

    def test_standard_normal_batch_equals_scalar_draws(self):
        batched = RandomStreams(seed=6).stream_for("fading", 1, 2)
        scalar = RandomStreams(seed=6).stream_for("fading", 1, 2)
        assert list(batched.standard_normal(16)) == [
            scalar.standard_normal() for _ in range(16)
        ]

    def test_uniform_batch_equals_scalar_draws(self):
        batched = RandomStreams(seed=6).stream_for("biterror", 1, 2)
        scalar = RandomStreams(seed=6).stream_for("biterror", 1, 2)
        assert list(batched.random(16)) == [scalar.random() for _ in range(16)]

    def test_batch_boundaries_do_not_move_the_sample_path(self):
        # Splitting one batch into several must reproduce the same sequence:
        # the dispatch plan's refill size is a tuning knob, not a semantic.
        one = RandomStreams(seed=9).stream_for("fading", 0, 3)
        split = RandomStreams(seed=9).stream_for("fading", 0, 3)
        whole = list(one.standard_normal(24))
        parts = list(split.standard_normal(5)) + list(split.standard_normal(19))
        assert whole == parts

    def test_keyed_streams_independent_of_registration_order(self):
        forward = RandomStreams(seed=4)
        for key in range(6):
            forward.stream_for("fading", key)
        backward = RandomStreams(seed=4)
        for key in reversed(range(6)):
            backward.stream_for("fading", key)
        for key in range(6):
            assert list(forward.stream_for("fading", key).random(4)) == list(
                backward.stream_for("fading", key).random(4)
            )

    def test_name_and_keys_cannot_collide_by_concatenation(self):
        # The key material length-prefixes the stream name, so a name that
        # swallows part of the key list maps to a different Philox key.
        streams = RandomStreams(seed=2)
        assert list(streams.stream_for("s", 11).random(4)) != list(
            streams.stream_for("s1", 1).random(4)
        )
