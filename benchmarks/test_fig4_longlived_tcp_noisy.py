"""F4 — Fig. 4(a)-(c): long-lived TCP under the noisy channel (BER 1e-5).

Same structure as Fig. 3; the paper's observation is that RIPPLE keeps its
lead when channel noise corrupts roughly 8 % of 1000-byte packets.
"""

import pytest

from repro.experiments.longlived import run_longlived_panel


@pytest.mark.parametrize("route_set", ["ROUTE0", "ROUTE1", "ROUTE2"])
def test_fig4_panel(benchmark, run_once, route_set):
    panel = run_once(
        run_longlived_panel, route_set, 1e-5, duration_s=0.5, seed=1,
        flow_sets=((1,), (1, 2, 3)),
    )
    for label, series in panel.throughput_mbps.items():
        for n_flows, value in series.items():
            benchmark.extra_info[f"{label}_{n_flows}flows_mbps"] = round(value, 2)
    for n_flows in (1, 3):
        others = [panel.throughput_mbps[label][n_flows] for label in ("S", "D", "R1", "A")]
        assert panel.throughput_mbps["R16"][n_flows] > max(others)
