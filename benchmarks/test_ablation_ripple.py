"""A1 — Ablations: RIPPLE's aggregation limit and forwarder-list cap.

Not a paper figure; quantifies the two design choices DESIGN.md calls out:
how much of RIPPLE's gain comes from aggregation (interpolating between the
paper's R1 and R16 bars) and how sensitive it is to the maximum number of
forwarders (Section III-B4 defaults to 5 and discusses up to 7).
"""

from repro.experiments.ablation import run_aggregation_ablation, run_forwarder_ablation


def test_aggregation_ablation(benchmark, run_once):
    result = run_once(run_aggregation_ablation, levels=(1, 4, 16), duration_s=0.4, seed=1)
    for level, value in result.throughput_mbps.items():
        benchmark.extra_info[f"agg{level}_mbps"] = round(value, 2)
    assert result.throughput_mbps[16] > result.throughput_mbps[1]
    assert result.throughput_mbps[4] > result.throughput_mbps[1]


def test_forwarder_ablation(benchmark, run_once):
    result = run_once(
        run_forwarder_ablation, forwarder_counts=(1, 3, 5), n_hops=6, duration_s=0.4, seed=1
    )
    for count, value in result.throughput_mbps.items():
        benchmark.extra_info[f"fwd{count}_mbps"] = round(value, 2)
    # With only one forwarder allowed the 6-hop path cannot be covered;
    # allowing the paper's default of 5 must help.
    assert result.throughput_mbps[5] > result.throughput_mbps[1]
