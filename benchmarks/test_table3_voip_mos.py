"""T3 — Table III: VoIP MoS on the Fig. 1 topology at a 6 Mb/s PHY.

Paper values (per scheme, flows 1..10 / 1..20 / 1..30):
  DCF   ROUTE0: 4.13 / 1.56 / 1.20   (BER 1e-6)
  AFR   ROUTE0: 4.12 / 1.42 / 1.01
  RIPPLE:       4.14 / 2.82 / 2.09
Shape reproduced: all schemes are fine with few calls, quality collapses as
calls are added, and RIPPLE degrades the least.
"""

import pytest

from repro.experiments.voip import run_voip


@pytest.mark.parametrize("ber", [1e-6, 1e-5], ids=["clear", "noisy"])
def test_table3_voip_mos(benchmark, run_once, ber):
    result = run_once(
        run_voip, bit_error_rate=ber, flow_groups=(10, 20), duration_s=1.5, seed=1
    )
    for label, series in result.mos.items():
        for n_flows, value in series.items():
            benchmark.extra_info[f"{label}_{n_flows}flows_mos"] = round(value, 2)
    for label in ("D", "A", "R16"):
        assert 1.0 <= result.mos[label][10] <= 4.5
        # More simultaneous calls never improve quality.
        assert result.mos[label][20] <= result.mos[label][10] + 0.2
    # RIPPLE sustains at least as good quality as DCF/AFR under load.
    assert result.mos["R16"][20] >= result.mos["D"][20] - 0.1
    assert result.mos["R16"][20] >= result.mos["A"][20] - 0.1
