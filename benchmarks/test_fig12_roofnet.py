"""F12 — Fig. 12: Roofnet-like topology, 3-5 hop pairs, +/- hidden terminals.

Shape reproduced: RIPPLE consistently outperforms DCF and AFR on multi-hop
pairs (the paper reports up to ~300 % gains, e.g. flow 5(1)).  The
benchmark runs the 3- and 4-hop examples at 6 Mb/s; the experiment module
exposes the full 3/3/4/4/5/5 sweep at both rates.
"""

import pytest

from repro.experiments.roofnet import run_roofnet


@pytest.mark.parametrize("hidden", [False, True], ids=["no_hidden", "hidden"])
def test_fig12_roofnet(benchmark, run_once, hidden):
    result = run_once(
        run_roofnet, data_rate_mbps=6.0, hidden_terminals=hidden,
        hop_counts=(3, 4), duration_s=0.4, seed=7,
    )
    for label, series in result.throughput_mbps.items():
        for pair_label, value in series.items():
            benchmark.extra_info[f"{label}_{pair_label}_mbps"] = round(value, 3)
    # A 0.4 s window over a 3-5 hop pair delivers only a handful of
    # aggregated batches, so any single pair can legitimately end a short
    # run at zero for some seeds; the scheme-level claim is that RIPPLE
    # moves traffic at all and wins on at least one pair.
    assert sum(result.throughput_mbps["R16"].values()) > 0
    wins = sum(
        1
        for pair_label in result.throughput_mbps["R16"]
        if result.throughput_mbps["R16"][pair_label] >= result.throughput_mbps["D"][pair_label]
    )
    assert wins >= 1
