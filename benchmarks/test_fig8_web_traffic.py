"""F8 — Fig. 8: short-lived web transfers (30 ON/OFF flows on the Fig. 1 topology).

Shape reproduced: RIPPLE carries more aggregate web throughput than AFR and
plain DCF even when transfers are short and bursty.
"""

from repro.experiments.web import run_web_traffic


def test_fig8_web_traffic(benchmark, run_once):
    result = run_once(run_web_traffic, duration_s=1.0, seed=1)
    for label, value in result.total_mbps.items():
        benchmark.extra_info[f"{label}_total_mbps"] = round(value, 2)
    assert result.total_mbps["R16"] > result.total_mbps["D"]
    assert result.total_mbps["R16"] > 0.8 * result.total_mbps["A"]
