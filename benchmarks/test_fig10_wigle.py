"""F10 — Fig. 10: Wigle topology, per-pair TCP throughput, +/- hidden S->R traffic.

Shape reproduced: RIPPLE matches or beats DCF/AFR on the measured pairs
(the paper reports up to ~200 % gains, e.g. flow 8-7-5), at both PHY rates.
The benchmark runs a subset of the eight pairs to keep the harness quick;
pass ``max_flows=None`` to :func:`run_wigle` for the full figure.
"""

import pytest

from repro.experiments.wigle import run_wigle


@pytest.mark.parametrize(
    "rate_mbps,hidden", [(6.0, False), (6.0, True), (216.0, False), (216.0, True)],
    ids=["6mbps", "6mbps_hidden", "216mbps", "216mbps_hidden"],
)
def test_fig10_wigle(benchmark, run_once, rate_mbps, hidden):
    result = run_once(
        run_wigle, data_rate_mbps=rate_mbps, hidden_traffic=hidden,
        duration_s=0.4, seed=1, max_flows=3,
    )
    ripple_wins = 0
    for label, series in result.throughput_mbps.items():
        for flow_label, value in series.items():
            benchmark.extra_info[f"{label}_{flow_label}_mbps"] = round(value, 3)
    for flow_label in result.throughput_mbps["R16"]:
        if result.throughput_mbps["R16"][flow_label] >= result.throughput_mbps["D"][flow_label]:
            ripple_wins += 1
    # RIPPLE is at least as good as predetermined DCF on most measured pairs;
    # under hidden interference the single-hop pairs in this reduced subset
    # can go either way (long aggregated frames are more exposed to hidden
    # collisions, as the paper notes for Fig. 6(b)), so one win suffices there.
    assert ripple_wins >= (1 if hidden else 2)
