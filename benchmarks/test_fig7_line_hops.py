"""F7 — Fig. 7(a)/(b): 2-7 hop line, with and without crossing traffic.

Shape reproduced: throughput falls as the path grows, RIPPLE stays on top,
and the crossing saturating flow lowers everyone's numbers.
"""

import pytest

from repro.experiments.hops import run_hops


@pytest.mark.parametrize("cross_traffic", [False, True], ids=["no_cross", "with_cross"])
def test_fig7_line_hops(benchmark, run_once, cross_traffic):
    result = run_once(
        run_hops, hop_counts=(2, 4, 6), cross_traffic=cross_traffic, duration_s=0.4, seed=1
    )
    for label, series in result.throughput_mbps.items():
        for hops, value in series.items():
            benchmark.extra_info[f"{label}_{hops}hops_mbps"] = round(value, 2)
    if not cross_traffic:
        # Without cross traffic throughput falls monotonically with path length.
        for label in ("D", "A", "R16"):
            assert result.throughput_mbps[label][6] < result.throughput_mbps[label][2]
        for hops in (2, 4, 6):
            assert result.throughput_mbps["R16"][hops] >= result.throughput_mbps["D"][hops]
    else:
        # With the crossing saturating flow the short lines suffer the most
        # (the cross flow shares their only relay), so monotonicity in hop
        # count no longer holds; everyone must still make progress and RIPPLE
        # must keep its lead on at least the shorter paths.  (On the longest
        # path our RIPPLE can fall below DCF because forwarder-local traffic
        # aggregation — the paper's remedy for relayed/local contention — is
        # not modelled; see EXPERIMENTS.md.)
        # Per-(label, hops) positivity is seed-sensitive at 0.4 s (a single
        # saturated relay can starve one flow for a whole short window), so
        # the progress claim is asserted per scheme across the sweep.
        for label in ("D", "A", "R16"):
            assert sum(result.throughput_mbps[label].values()) > 0
        wins = sum(
            1
            for hops in (2, 4, 6)
            if result.throughput_mbps["R16"][hops] >= result.throughput_mbps["D"][hops]
        )
        assert wins >= 2
