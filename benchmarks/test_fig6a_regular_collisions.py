"""F6a — Fig. 6(a): regular collisions (all stations within carrier-sense range).

Shape reproduced: per-flow-count totals with RIPPLE above AFR above DCF,
and total throughput that does not grow once the medium saturates.
"""

from repro.experiments.collisions import run_regular_collisions


def test_fig6a_regular_collisions(benchmark, run_once):
    result = run_once(
        run_regular_collisions, flow_counts=(1, 3, 5), duration_s=0.4, seed=1
    )
    for label, series in result.throughput_mbps.items():
        for n_flows, value in series.items():
            benchmark.extra_info[f"{label}_{n_flows}flows_mbps"] = round(value, 2)
    for n_flows in (1, 3, 5):
        assert result.throughput_mbps["R16"][n_flows] > result.throughput_mbps["D"][n_flows]
        assert result.throughput_mbps["A"][n_flows] > result.throughput_mbps["D"][n_flows]
