"""T1 — Table I: the simulation parameters used throughout the paper."""

from repro.mac.timing import DEFAULT_TIMING
from repro.phy.params import HIGH_RATE_PHY
from repro.sim.units import us


def table1_parameters():
    """Collect the Table I values as the library exposes them."""
    return {
        "sifs_us": DEFAULT_TIMING.sifs_ns / 1000,
        "slot_us": DEFAULT_TIMING.slot_ns / 1000,
        "packet_bytes": 1000,
        "data_rate_mbps": HIGH_RATE_PHY.data_rate_bps / 1e6,
        "basic_rate_mbps": HIGH_RATE_PHY.basic_rate_bps / 1e6,
        "queue_packets": DEFAULT_TIMING.queue_capacity,
        "phy_header_us": HIGH_RATE_PHY.phy_header_ns / 1000,
    }


def test_table1_defaults(benchmark, run_once):
    params = run_once(table1_parameters)
    benchmark.extra_info.update(params)
    assert params["sifs_us"] == 16
    assert params["slot_us"] == 9
    assert params["data_rate_mbps"] == 216
    assert params["basic_rate_mbps"] == 54
    assert params["queue_packets"] == 50
    assert params["phy_header_us"] == 20
    assert DEFAULT_TIMING.difs_ns == us(34)
