"""F6b — Fig. 6(b): flow 1 throttled by hidden saturating flows.

Shape reproduced: flow 1's throughput collapses as hidden load grows for
every scheme; RIPPLE leads at low hidden load, and no scheme sustains
meaningful throughput in the heavily hidden regime (the paper notes RIPPLE
can even dip below DCF/AFR there because broken mTXOPs are expensive).
"""

from repro.experiments.collisions import run_hidden_collisions


def test_fig6b_hidden_collisions(benchmark, run_once):
    result = run_once(
        run_hidden_collisions, hidden_counts=(0, 3, 7), duration_s=0.4, seed=1
    )
    for label, series in result.throughput_mbps.items():
        for n_hidden, value in series.items():
            benchmark.extra_info[f"{label}_{n_hidden}hidden_mbps"] = round(value, 2)
    for label in ("D", "A", "R16"):
        assert result.throughput_mbps[label][7] < result.throughput_mbps[label][0]
    assert result.throughput_mbps["R16"][0] > result.throughput_mbps["D"][0]
