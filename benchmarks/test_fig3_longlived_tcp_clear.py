"""F3 — Fig. 3(a)-(c): long-lived TCP, BER 1e-6, ROUTE0/1/2, schemes S/D/R1/A/R16.

Shape reproduced: S << D, A ~ 2x D, R1 >= D, R16 on top on every route set,
and ROUTE2 noticeably worse than ROUTE0/ROUTE1.
"""

import pytest

from repro.experiments.longlived import run_longlived_panel


@pytest.mark.parametrize("route_set", ["ROUTE0", "ROUTE1", "ROUTE2"])
def test_fig3_panel(benchmark, run_once, route_set):
    panel = run_once(
        run_longlived_panel, route_set, 1e-6, duration_s=0.5, seed=1,
        flow_sets=((1,), (1, 2), (1, 2, 3)),
    )
    for label, series in panel.throughput_mbps.items():
        for n_flows, value in series.items():
            benchmark.extra_info[f"{label}_{n_flows}flows_mbps"] = round(value, 2)
    # RIPPLE wins on every flow count, as in every panel of Fig. 3.
    for n_flows in (1, 2, 3):
        others = [panel.throughput_mbps[label][n_flows] for label in ("S", "D", "R1", "A")]
        assert panel.throughput_mbps["R16"][n_flows] > max(others)
    # The direct (S) route is far worse than the relayed route for flow 1.
    assert panel.throughput_mbps["S"][1] < 0.5 * panel.throughput_mbps["D"][1]
