"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Simulated durations are scaled down from
the paper's 10 s so the whole harness completes in minutes; the asserted
properties are the orderings/shapes the paper reports, which are stable at
these durations.  Every benchmark runs exactly one round — the interesting
output is the reproduced numbers (attached as ``extra_info``), not the
wall-clock variance of the simulator.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
