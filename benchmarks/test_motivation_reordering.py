"""M1 — Section II motivation: SPR vs preExOR vs MCExOR throughput and re-ordering.

Paper values (10 s, BER 1e-6): SPR 6.7 Mb/s, preExOR 5.9 Mb/s, MCExOR
5.85 Mb/s; 26.58 % / 27.9 % of TCP packets re-ordered under
preExOR / MCExOR.  The reproduced shape: predetermined routing on top,
both opportunistic schemes below it with double-digit re-ordering ratios.
"""

from repro.experiments.motivation import run_motivation


def test_motivation_reordering(benchmark, run_once):
    results = run_once(run_motivation, duration_s=0.6, seed=1)
    for name, outcome in results.items():
        benchmark.extra_info[f"{name}_mbps"] = round(outcome.throughput_mbps, 2)
        benchmark.extra_info[f"{name}_reorder_pct"] = round(outcome.reordering_ratio * 100, 1)
    assert results["SPR"].throughput_mbps > results["preExOR"].throughput_mbps
    assert results["SPR"].throughput_mbps > results["MCExOR"].throughput_mbps
    assert results["preExOR"].reordering_ratio > 0.05
    assert results["MCExOR"].reordering_ratio > 0.05
    assert results["SPR"].reordering_ratio < 0.03
