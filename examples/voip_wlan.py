#!/usr/bin/env python3
"""Table III-style VoIP experiment: how many calls can the mesh carry?

Places 96 kb/s on-off VoIP streams (20 ms packetisation, exponential
on/off with 1.5 s means) on the Fig. 1 topology at a 6 Mb/s PHY and scores
each flow with the E-model (R-factor -> MoS), exactly as Section IV-E
describes: packets later than the 52 ms wireless budget count as losses
against a 177 ms mouth-to-ear delay.

Run with:  python examples/voip_wlan.py [duration_seconds]
"""

import sys

from repro.experiments.report import render_panel
from repro.experiments.voip import run_voip


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 1.5
    groups = (10, 20)
    result = run_voip(bit_error_rate=1e-6, flow_groups=groups, duration_s=duration, seed=1)
    print(
        render_panel(
            f"Table III (BER 1e-6, 6 Mb/s PHY, {duration} s simulated) — mean MoS\n"
            "columns: number of active VoIP calls",
            result.mos,
            list(groups),
        )
    )
    print()
    print("Effective loss rate (late + lost packets):")
    print(
        render_panel(
            "", result.loss, list(groups)
        )
    )
    print("\nMoS scale: 1 impossible, 2 very annoying, 3 annoying, 4 fair, 4.5 perfect")


if __name__ == "__main__":
    main()
