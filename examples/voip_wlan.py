#!/usr/bin/env python3
"""Table III-style VoIP experiment: how many calls can the mesh carry?

Places 96 kb/s on-off VoIP streams (20 ms packetisation, exponential
on/off with 1.5 s means) on the Fig. 1 topology at a 6 Mb/s PHY and scores
each flow with the E-model (R-factor -> MoS), exactly as Section IV-E
describes: packets later than the 52 ms wireless budget count as losses
against a 177 ms mouth-to-ear delay.

The VoIP workload is just a traffic kind in the scenario API — the same
cell is one CLI invocation away:

    python -m repro.experiments run --set topology=voip scheme=D \
        phy=low_rate flows=1,2,3,4,5,6,7,8,9,10

Run with:  python examples/voip_wlan.py [duration_seconds]
(Or set REPRO_EXAMPLE_DURATION, e.g. in CI.)
"""

import os
import sys

from repro.experiments.report import render_panel
from repro.experiments.voip import run_voip


def main() -> None:
    default = float(os.environ.get("REPRO_EXAMPLE_DURATION", "1.5"))
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else default
    groups = (10, 20)
    result = run_voip(bit_error_rate=1e-6, flow_groups=groups, duration_s=duration, seed=1)
    print(
        render_panel(
            f"Table III (BER 1e-6, 6 Mb/s PHY, {duration} s simulated) — mean MoS\n"
            "columns: number of active VoIP calls",
            result.mos,
            list(groups),
        )
    )
    print()
    print("Effective loss rate (late + lost packets):")
    print(
        render_panel(
            "", result.loss, list(groups)
        )
    )
    print("\nMoS scale: 1 impossible, 2 very annoying, 3 annoying, 4 fair, 4.5 perfect")


if __name__ == "__main__":
    main()
