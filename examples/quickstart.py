#!/usr/bin/env python3
"""Quickstart: a 4-node relay chain comparing every scheme in the MAC registry.

Builds the smallest interesting scenario by hand (no experiment harness):
a source, two relays and a destination, a long-lived TCP transfer — then
installs each forwarding scheme straight from the MAC scheme registry
(`repro.mac.registry.MAC_SCHEMES`), the same registry `--set mac=...`
resolves on the command line.  Register a new scheme and it shows up in
this table with no other change.

Run with:  python examples/quickstart.py
(Set REPRO_EXAMPLE_DURATION to shorten the simulated time, e.g. in CI.)
"""

import os

from repro import BitErrorModel, StaticRouting, WirelessNetwork
from repro.mac.registry import MAC_SCHEMES
from repro.sim.units import seconds
from repro.traffic import FtpApplication
from repro.transport import TcpSender, TcpSink

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "1.0"))

#: The paper's headline comparison, in figure order (a subset of the registry).
SCHEMES = ("dcf", "afr", "ripple1", "ripple")


def run(scheme: str) -> float:
    """Simulate one scheme and return the TCP goodput in Mb/s."""
    net = WirelessNetwork(error_model=BitErrorModel(1e-6), seed=7)
    # A straight chain: 0 -> 1 -> 2 -> 3, 115 m between neighbours (reliable
    # hops under the paper's shadowing model); the 345 m direct link is poor.
    for node_id, x in enumerate((0.0, 115.0, 230.0, 345.0)):
        net.add_node(node_id, (x, 0.0))
    routing = StaticRouting({(0, 3): [0, 1, 2, 3]})
    net.install_stack(scheme, routing)
    net.install_transport()

    sender = TcpSender(net.sim, net.node(0).transport, flow_id=1, dst=3)
    sink = TcpSink(net.sim, net.node(3).transport, flow_id=1, peer=0)
    FtpApplication(sender).start()

    net.run_seconds(DURATION_S)
    return sink.goodput_bps(seconds(DURATION_S)) / 1e6


def main() -> None:
    print(f"Long-lived TCP over a 3-hop chain ({DURATION_S:g} s simulated)\n")
    print(f"{'scheme':<30} {'goodput':>12}")
    results = {}
    for scheme in SCHEMES:
        info = MAC_SCHEMES.lookup(scheme)  # registry entry: factory + label
        mbps = run(scheme)
        results[scheme] = mbps
        print(f"{info.label:<30} {mbps:>9.2f} Mb/s")
    gain = results["ripple"] / results["dcf"]
    print(f"\nRIPPLE / DCF gain: {gain:.1f}x (the paper reports 2x-4x gains)")


if __name__ == "__main__":
    main()
