#!/usr/bin/env python3
"""Reproduce a Fig. 3-style panel: the Fig. 1 mesh, three flows, five schemes.

Runs the paper's long-lived TCP comparison on the multi-flow topology of
Fig. 1 with the ROUTE0 predetermined routes (Table II), activating flow 1,
then flows 1+2, then all three flows, and prints the same bars Fig. 3(a)
plots: S (direct shortest path), D (802.11 DCF), R1 (RIPPLE without
aggregation), A (AFR) and R16 (RIPPLE).

The scheme labels are a thin alias layer over the component registries —
"R16" is exactly `mac=ripple routing=static`, so any bar of this panel is
also reachable as:

    python -m repro.experiments run --set topology=fig1 mac=ripple flows=1,2,3

Run with:  python examples/mesh_long_lived_tcp.py [duration_seconds]
(Or set REPRO_EXAMPLE_DURATION, e.g. in CI.)
"""

import os
import sys

from repro.experiments.longlived import run_longlived_panel
from repro.experiments.report import render_panel


def main() -> None:
    default = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.5"))
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else default
    panel = run_longlived_panel("ROUTE0", bit_error_rate=1e-6, duration_s=duration, seed=1)
    print(
        render_panel(
            f"Fig. 3(a) — total TCP throughput (Mb/s), ROUTE0, BER 1e-6, {duration} s simulated\n"
            "columns: number of simultaneously active flows",
            panel.throughput_mbps,
            [1, 2, 3],
        )
    )
    print()
    r16 = panel.throughput_mbps["R16"][3]
    dcf = panel.throughput_mbps["D"][3]
    print(f"RIPPLE vs DCF with all three flows active: {r16 / dcf:.1f}x")


if __name__ == "__main__":
    main()
