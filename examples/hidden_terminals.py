#!/usr/bin/env python3
"""Fig. 6(b)-style experiment: a TCP flow throttled by hidden saturating traffic.

Flow 1 is a three-hop TCP transfer; up to nine one-hop UDP sources that
its source cannot carrier-sense pound the medium near its relays and
destination.  The example sweeps the number of hidden flows and prints
flow 1's throughput for DCF, AFR and RIPPLE — reproducing the shape of
Fig. 6(b): everyone collapses as hidden load grows, RIPPLE leads at low
load and loses its edge when hidden collisions break its long mTXOPs.

One grid point of the same sweep, straight from the scenario API:

    python -m repro.experiments run --set topology=fig5b topology.n_hidden=4 scheme=R16

Run with:  python examples/hidden_terminals.py [duration_seconds]
(Or set REPRO_EXAMPLE_DURATION, e.g. in CI.)
"""

import os
import sys

from repro.experiments.collisions import run_hidden_collisions
from repro.experiments.report import render_panel


def main() -> None:
    default = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.5"))
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else default
    hidden_counts = (0, 2, 4, 6)
    result = run_hidden_collisions(hidden_counts=hidden_counts, duration_s=duration, seed=1)
    print(
        render_panel(
            f"Fig. 6(b) — flow 1 throughput (Mb/s) vs number of hidden flows "
            f"({duration} s simulated)",
            result.throughput_mbps,
            list(hidden_counts),
        )
    )


if __name__ == "__main__":
    main()
