#!/usr/bin/env python3
"""The component pack in one script: fading, rate adaptation, Poisson traffic, trace files.

Part 1 runs the `fading` experiment family — the 4-hop relay line under
every registered propagation model (log-normal shadowing, Rayleigh,
Rician K=4) for the D and R16 schemes — through the cached sweep runner.

Part 2 exercises the rest of the pack end to end: it *writes* a small
CSV trace topology to a temp directory, loads it through the `trace:`
prefix entry of the topology registry (routes derived from geometric
shortest paths), and runs Poisson session traffic over the ARF
rate-adaptive MAC under Rician fading — the works.  The same scenario
from the shell:

    python -m repro.experiments run --set topology=trace:mesh.csv \
        mac=rate_adapt traffic=poisson traffic.arrival_rate_hz=30 \
        phy.propagation=rician duration=0.5

Run with:  python examples/fading_mesh.py
(Set REPRO_EXAMPLE_DURATION to shorten the simulated time, e.g. in CI.)
"""

import os
import tempfile
import textwrap

from repro.experiments import ResultCache, ScenarioConfig, SweepRunner
from repro.experiments.fading import FADING_MODELS, run_fading
from repro.experiments.report import render_panel
from repro.phy.params import PhyParams
from repro.spec import MacSpec, TrafficSpec
from repro.topology.registry import build_topology

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "1.0"))

#: A 6-station double chain with two crossing flows.
TRACE_CSV = """\
# station placements (metres) — two parallel 3-hop chains, bridged
node,0,0,0
node,1,115,0
node,2,230,0
node,3,0,90
node,4,115,90
node,5,230,90
# flows: one per chain (Poisson sessions re-flavour them at run time)
flow,1,0,2
flow,2,3,5
"""


def main() -> None:
    cache = ResultCache()  # .repro-cache/ unless $REPRO_CACHE_DIR says otherwise
    runner = SweepRunner(jobs=2, cache=cache)

    result = run_fading(duration_s=DURATION_S, runner=runner)
    print(
        render_panel(
            "Flow-1 Mb/s per propagation model (4-hop line)",
            result.throughput_mbps,
            list(FADING_MODELS),
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mesh.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(TRACE_CSV))
        topology = build_topology(f"trace:{path}")
        print(
            f"\nloaded {topology.name}: {len(topology.positions)} nodes, "
            f"{len(topology.flows)} flows, derived routes "
            f"{sorted(topology.route_sets['ROUTE0'])}"
        )
        config = ScenarioConfig(
            topology=topology,
            mac=MacSpec("rate_adapt", {"inner": "dcf", "up_after": 5}),
            traffic=TrafficSpec("poisson", {"arrival_rate_hz": 30.0}),
            phy=PhyParams(propagation="rician", propagation_params={"k_factor": 4.0}),
            duration_s=DURATION_S,
            seed=3,
        )
        outcome = runner.run_one(config)
        for flow in outcome.flows:
            print(
                f"flow {flow.flow_id}: {flow.throughput_mbps:.2f} Mb/s, "
                f"{flow.packets_received} packets received"
            )

    total = cache.hits + cache.misses
    print(f"\ncache: {cache.hits}/{total} hits in {cache.root}")


if __name__ == "__main__":
    main()
