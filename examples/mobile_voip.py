#!/usr/bin/env python3
"""VoIP quality under mobility: MoS vs node speed through the sweep runner.

Takes the Table III workload (96 kb/s on-off VoIP calls on the Fig. 1
topology) and puts the stations on random-waypoint trajectories at
increasing speeds.  Speed 0 reproduces the paper's fixed-placement MoS
exactly; the other columns show how each scheme's call quality holds up
as movement invalidates links and the mobility subsystem re-estimates the
ETX graph and refreshes routes mid-call.

The `mobility-voip` experiment family behind this is itself a declarative
grid over the scenario API; one of its grid points, from the shell:

    python -m repro.experiments run --set topology=voip traffic=flows \
        scheme=R16 mobility=random_waypoint mobility.speed=5 phy=low_rate

Like examples/sweep_parallel.py, the grid fans out over worker processes
and every scenario result is cached on disk, so a second run of this
script renders from cache in milliseconds.

Run with:  python examples/mobile_voip.py
(Set REPRO_EXAMPLE_DURATION to shorten the simulated time, e.g. in CI.)
"""

import os
import time

from repro.experiments import ResultCache, SweepRunner
from repro.experiments.mobility import run_mobility_voip
from repro.experiments.report import render_panel

SPEEDS_MPS = (0.0, 1.0, 5.0, 10.0)
SCHEMES = ("D", "A", "R16")
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "1.0"))
CALLS = 10


def main() -> None:
    cache = ResultCache()  # .repro-cache/ unless $REPRO_CACHE_DIR says otherwise
    runner = SweepRunner(jobs=4, cache=cache)
    start = time.perf_counter()
    result = run_mobility_voip(
        speeds=SPEEDS_MPS,
        schemes=SCHEMES,
        n_flows=CALLS,
        duration_s=DURATION_S,
        runner=runner,
    )
    elapsed = time.perf_counter() - start

    print(
        render_panel(
            f"Mean MoS, {CALLS} calls, vs node speed (m/s, random waypoint)",
            result.mos,
            list(SPEEDS_MPS),
        )
    )
    print()
    print(
        render_panel(
            "Effective loss rate (late + lost)",
            result.loss,
            list(SPEEDS_MPS),
        )
    )
    total = cache.hits + cache.misses
    print(f"\n{elapsed:.2f} s wall clock; cache: {cache.hits}/{total} hits in {cache.root}")


if __name__ == "__main__":
    main()
