#!/usr/bin/env python3
"""Parallel multi-seed scheme sweep through the SweepRunner.

Expands a declarative config grid (5 schemes x 3 seeds on the Fig. 1
topology), fans it out over worker processes, and caches every scenario
result on disk so a second run of this script is served from cache in
milliseconds.

Run with:  python examples/sweep_parallel.py
Then run it again and watch the cache line at the bottom.
"""

import statistics
import time

from repro.experiments import (
    DEFAULT_SCHEME_LABELS,
    ResultCache,
    ScenarioConfig,
    SweepRunner,
    expand_grid,
)
from repro.topology.standard import fig1_topology

DURATION_S = 0.2
SEEDS = (1, 2, 3)


def main() -> None:
    base = ScenarioConfig(
        topology=fig1_topology(),
        route_set="ROUTE0",
        active_flows=[1],
        duration_s=DURATION_S,
    )
    grid = expand_grid(base, scheme_label=list(DEFAULT_SCHEME_LABELS), seed=list(SEEDS))
    print(f"{len(grid)} scenarios ({len(DEFAULT_SCHEME_LABELS)} schemes x {len(SEEDS)} seeds)")

    cache = ResultCache()  # .repro-cache/ unless $REPRO_CACHE_DIR says otherwise
    runner = SweepRunner(jobs=4, cache=cache)
    start = time.perf_counter()
    results = runner.run(grid)
    elapsed = time.perf_counter() - start

    print(f"\n{'scheme':<8} {'mean Mb/s':>10} {'stdev':>8}   (flow 1, {DURATION_S} s)")
    for index, label in enumerate(DEFAULT_SCHEME_LABELS):
        per_seed = [
            results[index * len(SEEDS) + seed_index].total_throughput_mbps
            for seed_index in range(len(SEEDS))
        ]
        stdev = statistics.stdev(per_seed) if len(per_seed) > 1 else 0.0
        print(f"{label:<8} {statistics.mean(per_seed):>10.2f} {stdev:>8.2f}")

    total = cache.hits + cache.misses
    print(f"\n{elapsed:.2f} s wall clock; cache: {cache.hits}/{total} hits in {cache.root}")


if __name__ == "__main__":
    main()
