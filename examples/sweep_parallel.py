#!/usr/bin/env python3
"""Parallel multi-seed scheme sweep from one declarative ScenarioSpec.

Starts from a fully declarative `ScenarioSpec` — the topology is a
registry reference (`TopologyRef("fig1")`), not a hand-built object —
expands it into a config grid (5 schemes x 3 seeds), fans the grid out
over worker processes, and caches every scenario result on disk so a
second run of this script is served from cache in milliseconds.

The same scenario, straight from the shell:

    python -m repro.experiments run --set topology=fig1 scheme=R16 flows=1

Run with:  python examples/sweep_parallel.py
Then run it again and watch the cache line at the bottom.
(Set REPRO_EXAMPLE_DURATION to shorten the simulated time, e.g. in CI.)
"""

import os
import statistics
import time

from repro.experiments import (
    DEFAULT_SCHEME_LABELS,
    ResultCache,
    ScenarioSpec,
    SweepRunner,
    TopologyRef,
    expand_grid,
)

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.2"))
SEEDS = (1, 2, 3)


def main() -> None:
    spec = ScenarioSpec(
        topology=TopologyRef("fig1"),
        route_set="ROUTE0",
        active_flows=[1],
        duration_s=DURATION_S,
    )
    base = spec.to_config()  # registry reference -> concrete ScenarioConfig
    grid = expand_grid(base, scheme_label=list(DEFAULT_SCHEME_LABELS), seed=list(SEEDS))
    print(f"{len(grid)} scenarios ({len(DEFAULT_SCHEME_LABELS)} schemes x {len(SEEDS)} seeds)")

    cache = ResultCache()  # .repro-cache/ unless $REPRO_CACHE_DIR says otherwise
    runner = SweepRunner(jobs=4, cache=cache)
    start = time.perf_counter()
    results = runner.run(grid)
    elapsed = time.perf_counter() - start

    print(f"\n{'scheme':<8} {'mean Mb/s':>10} {'stdev':>8}   (flow 1, {DURATION_S} s)")
    for index, label in enumerate(DEFAULT_SCHEME_LABELS):
        per_seed = [
            results[index * len(SEEDS) + seed_index].total_throughput_mbps
            for seed_index in range(len(SEEDS))
        ]
        stdev = statistics.stdev(per_seed) if len(per_seed) > 1 else 0.0
        print(f"{label:<8} {statistics.mean(per_seed):>10.2f} {stdev:>8.2f}")

    total = cache.hits + cache.misses
    print(f"\n{elapsed:.2f} s wall clock; cache: {cache.hits}/{total} hits in {cache.root}")


if __name__ == "__main__":
    main()
