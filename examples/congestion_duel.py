#!/usr/bin/env python3
"""Reno vs Cubic over RIPPLE: the same mesh, two congestion controllers.

The paper fixes TCP Reno and varies the MAC; with the transport registry
the complementary cut is one scenario away: hold the MAC at RIPPLE (R16)
on a 3-hop line and swap the congestion controller.  Any cell of this
duel is also reachable from the CLI:

    python -m repro.experiments run --set mac=ripple transport=cubic

Run with:  python examples/congestion_duel.py [duration_seconds]
(Or set REPRO_EXAMPLE_DURATION, e.g. in CI.)
"""

import os
import sys

from repro.experiments.congestion import run_congestion
from repro.experiments.report import render_panel


def main() -> None:
    default = float(os.environ.get("REPRO_EXAMPLE_DURATION", "1.0"))
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else default
    result = run_congestion(
        topology="line",
        transports=("reno", "cubic"),
        schemes=("D", "R16"),
        duration_s=duration,
        seed=1,
    )
    print(
        render_panel(
            f"Congestion duel — flow-1 Mb/s, 3-hop line, {duration} s simulated\n"
            "columns: MAC scheme (D = 802.11 DCF, R16 = RIPPLE)",
            result.throughput_mbps,
            ["D", "R16"],
        )
    )
    print()
    reno = result.throughput_mbps["reno"]["R16"]
    cubic = result.throughput_mbps["cubic"]["R16"]
    print(f"cubic vs reno over RIPPLE: {cubic / reno:.2f}x "
          f"({result.retransmissions['cubic']['R16']} vs "
          f"{result.retransmissions['reno']['R16']} retransmitted segments)")


if __name__ == "__main__":
    main()
