"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on minimal offline environments
whose pip/setuptools cannot build PEP 660 editable wheels (no ``wheel``
package available).
"""

from setuptools import setup

setup()
